// Package device models the 40 consumer IoT devices of the IoTLS
// testbed (Table 1 of the paper) as behavioural ground truth: each
// device carries one or more TLS instances (library + configuration),
// a destination set, a root store, longitudinal configuration phases,
// and the vulnerability/fallback behaviours the paper measured.
//
// The models are the *simulated devices*; the measurement pipeline
// (mitm, probe, capture, analysis) must recover the paper's tables and
// figures from their observable traffic alone.
package device

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/certs"
	"repro/internal/clock"
	"repro/internal/rootstore"
	"repro/internal/tlssim"
)

// Category is a Table 1 device category.
type Category string

// The six Table 1 categories.
const (
	CatCamera     Category = "Cameras"
	CatHub        Category = "Smart Hubs"
	CatAutomation Category = "Home Automation"
	CatTV         Category = "TV"
	CatAudio      Category = "Audio"
	CatAppliance  Category = "Appliances"
)

// Categories lists the Table 1 categories in column order.
var Categories = []Category{CatCamera, CatHub, CatAutomation, CatTV, CatAudio, CatAppliance}

// ServerProfile describes what a destination's cloud endpoint supports —
// the "server side" that limits many devices' established security
// (§5.1: "the security of TLS connections from IoT devices in many
// cases is limited by servers rather than the devices themselves").
type ServerProfile int

const (
	// SrvModernPFS: TLS up to 1.3, prefers ECDHE-GCM (strong).
	SrvModernPFS ServerProfile = iota
	// SrvModern12: TLS up to 1.2, prefers ECDHE (strong).
	SrvModern12
	// SrvRSAOnly: TLS up to 1.2 but prefers plain-RSA key exchange —
	// established connections lack forward secrecy.
	SrvRSAOnly
	// SrvLegacy11: TLS up to 1.1 only, RSA key exchange.
	SrvLegacy11
	// SrvLegacy10: TLS up to 1.0 only, RSA key exchange.
	SrvLegacy10
	// SrvLegacyRC4: TLS up to 1.0, prefers RC4 — the servers behind the
	// only two devices that *established* insecure-cipher connections
	// (Wink Hub 2 and LG TV, Figure 2).
	SrvLegacyRC4
)

// String implements fmt.Stringer.
func (p ServerProfile) String() string {
	switch p {
	case SrvModernPFS:
		return "modern-pfs"
	case SrvModern12:
		return "modern-12"
	case SrvRSAOnly:
		return "rsa-only"
	case SrvLegacy11:
		return "legacy-11"
	case SrvLegacy10:
		return "legacy-10"
	case SrvLegacyRC4:
		return "legacy-rc4"
	default:
		return "unknown"
	}
}

// Destination is one network endpoint a device talks to.
type Destination struct {
	// Host is the DNS name (SNI value).
	Host string
	// FirstParty marks vendor-operated endpoints.
	FirstParty bool
	// Slot selects which TLS instance serves this destination.
	Slot int
	// Boot marks destinations contacted on power-up — the connections
	// the paper's reboot-triggered active experiments observe.
	Boot bool
	// MonthlyConns is the passive-experiment connection volume per month.
	MonthlyConns int
	// Server selects the cloud endpoint's capability profile.
	Server ServerProfile
	// AfterLogin marks destinations contacted only after the device's
	// first boot connection succeeds (e.g. post-login endpoints). Under
	// full interception these never appear; TrafficPassthrough exposes
	// them — the paper's ≈20.4% additional hostnames (§4.2).
	AfterLogin bool
}

// Template builds a TLS instance configuration for a device. Templates
// close over protocol parameters; the device supplies trust anchors.
type Template func(roots *certs.Pool, clk clock.Clock) *tlssim.ClientConfig

// Phase is one configuration era of a TLS instance slot. Phases model
// the longitudinal behaviour changes of §5.1 (e.g. Apple TV adopting
// TLS 1.3 in 5/2019).
type Phase struct {
	// From is the first month the phase applies; the zero Month means
	// "from the beginning of the study".
	From clock.Month
	// Template builds the configuration.
	Template Template
}

// Fallback models downgrade-on-failure behaviour (Table 5).
type Fallback struct {
	// OnIncomplete triggers the fallback after an incomplete handshake
	// (no ServerHello).
	OnIncomplete bool
	// OnFailed triggers the fallback after a failed handshake.
	OnFailed bool
	// Template builds the downgraded configuration.
	Template Template
}

// Slot is a TLS instance slot: a timeline of configurations plus
// optional fallback behaviour. A device with multiple slots has
// multiple TLS instances (§5.3).
type Slot struct {
	Label    string
	Phases   []Phase
	Fallback *Fallback
}

// RootPlan encodes a Table 9 row: how much of each probe set the device
// trusts and how many probe trials are conclusive.
type RootPlan struct {
	CommonIncluded       int
	CommonConclusive     int
	DeprecatedIncluded   int
	DeprecatedConclusive int
}

// Device is one modelled IoT device.
type Device struct {
	// ID is the stable machine identifier (also the network source
	// host name), e.g. "amazon-echo-dot".
	ID string
	// Name is the Table 1 display name.
	Name string
	// Category is the Table 1 category.
	Category Category
	// PassiveOnly marks the 8 devices used only in passive experiments
	// (the * rows of Table 1).
	PassiveOnly bool
	// RebootSuitable is false for appliances excluded from the
	// reboot-driven probing experiments (§5.2).
	RebootSuitable bool
	// Slots are the device's TLS instances.
	Slots []*Slot
	// Destinations is the endpoint set.
	Destinations []Destination
	// ActiveFrom/ActiveTo bound the months the device generated passive
	// traffic (gray cells outside).
	ActiveFrom, ActiveTo clock.Month
	// Roots is the device's trusted root store.
	Roots *certs.Pool
	// Plan is the Table 9 root-store plan; nil for devices that are not
	// probe targets.
	Plan *RootPlan
	// Resilience overrides the category-default retry policy; nil means
	// DefaultResilience(Category). See ResiliencePolicy.
	Resilience *Resilience
	// SensitiveToken, when non-empty, is included in the device's
	// application payloads — the "potentially sensitive data" the paper
	// recovered from 7 of the 11 intercepted devices (§5.2).
	SensitiveToken string
	// UnitsSoldMillions estimates the product line's install base; the
	// paper notes the tested devices collectively represent over 200
	// million units sold — the reason shared-fingerprint attacks scale.
	UnitsSoldMillions float64

	// probeConclusive marks which probe-set certificates yield
	// conclusive trials (the device reliably reconnects).
	probeConclusive map[string]bool

	// built instance configurations: one ClientConfig per slot phase so
	// instance state (failure counters) persists across handshakes.
	configs   map[string][]*tlssim.ClientConfig // slot label -> per-phase
	fallbacks map[string]*tlssim.ClientConfig
}

// StudyStart and StudyEnd bound the passive dataset (Jan 2018-Mar 2020).
var (
	StudyStart = clock.Month{Year: 2018, Mon: 1}
	StudyEnd   = clock.Month{Year: 2020, Mon: 3}
	// ActiveSnapshot is when the bulk of active experiments ran (§4.1).
	ActiveSnapshot = clock.Month{Year: 2021, Mon: 3}
)

// build finalises a device definition: constructs the root store from
// the universe per the plan, and materialises instance configurations.
func (d *Device) build(u *rootstore.Universe, clk clock.Clock) {
	d.Roots, d.probeConclusive = buildRootStore(d.ID, d.Plan, u)
	d.Finalize(clk)
}

// Finalize materialises the device's per-slot instance configurations
// against its root store, which must already be set. It is the
// exported counterpart of the catalog's build step for externally
// generated devices (the synthetic fleet), whose root pools are shared
// across many devices instead of constructed per device. The fallback
// map is only allocated when a slot declares one, keeping the
// per-device footprint of fleets lean.
func (d *Device) Finalize(clk clock.Clock) {
	d.configs = make(map[string][]*tlssim.ClientConfig, len(d.Slots))
	for _, s := range d.Slots {
		cfgs := make([]*tlssim.ClientConfig, len(s.Phases))
		for i, p := range s.Phases {
			cfgs[i] = p.Template(d.Roots, clk)
		}
		d.configs[s.Label] = cfgs
		if s.Fallback != nil {
			if d.fallbacks == nil {
				d.fallbacks = make(map[string]*tlssim.ClientConfig)
			}
			d.fallbacks[s.Label] = s.Fallback.Template(d.Roots, clk)
		}
	}
}

// ConfigAt returns the TLS instance configuration for slot at the given
// month. Months before the first phase use the first phase.
func (d *Device) ConfigAt(slot int, m clock.Month) *tlssim.ClientConfig {
	s := d.Slots[slot]
	cfgs := d.configs[s.Label]
	idx := 0
	for i, p := range s.Phases {
		zero := clock.Month{}
		if p.From == zero || !m.Before(p.From) {
			idx = i
		}
	}
	return cfgs[idx]
}

// FallbackConfigAt returns the slot's fallback configuration, or nil.
func (d *Device) FallbackConfigAt(slot int) *tlssim.ClientConfig {
	return d.fallbacks[d.Slots[slot].Label]
}

// ActiveIn reports whether the device generated traffic in month m.
func (d *Device) ActiveIn(m clock.Month) bool {
	return !m.Before(d.ActiveFrom) && !d.ActiveTo.Before(m)
}

// BootDestinations returns the destinations contacted unconditionally on
// power-up (AfterLogin destinations excluded).
func (d *Device) BootDestinations() []Destination {
	var out []Destination
	for _, dst := range d.Destinations {
		if dst.Boot && !dst.AfterLogin {
			out = append(out, dst)
		}
	}
	return out
}

// AfterLoginDestinations returns the destinations contacted only after a
// successful first boot connection.
func (d *Device) AfterLoginDestinations() []Destination {
	var out []Destination
	for _, dst := range d.Destinations {
		if dst.AfterLogin {
			out = append(out, dst)
		}
	}
	return out
}

// ProbeConclusive reports whether a probe trial against the given CA
// certificate is conclusive for this device (the device reconnected and
// produced an observable outcome). Devices without a plan always
// respond.
func (d *Device) ProbeConclusive(ca *certs.Certificate) bool {
	if d.probeConclusive == nil {
		return true
	}
	return d.probeConclusive[ca.SubjectKey()]
}

// ProbeDestination returns the destination used for root-store probing:
// the first boot destination of slot 0 (the instance triggered on every
// reboot, §4.2's "same TLS instance every time").
func (d *Device) ProbeDestination() (Destination, bool) {
	for _, dst := range d.Destinations {
		if dst.Boot && dst.Slot == 0 {
			return dst, true
		}
	}
	return Destination{}, false
}

// deviceRank orders certificates deterministically per device.
func deviceRank(devID string, key string) uint64 {
	sum := sha256.Sum256([]byte("probe-plan:" + devID + ":" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

func rankCerts(devID string, cs []*certs.Certificate) []*certs.Certificate {
	out := append([]*certs.Certificate(nil), cs...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := deviceRank(devID, out[i].SubjectKey()), deviceRank(devID, out[j].SubjectKey())
		if ri != rj {
			return ri < rj
		}
		return out[i].SubjectKey() < out[j].SubjectKey()
	})
	return out
}

// operationalCommonCount is the number of leading common CAs (by subject
// key order) that anchor the simulation's cloud PKI. Every device trusts
// them so legitimate traffic validates everywhere.
const operationalCommonCount = 6

// OperationalCAs returns the common CAs used by the cloud PKI.
func OperationalCAs(u *rootstore.Universe) []*rootstore.CA {
	cas := append([]*rootstore.CA(nil), u.Common...)
	sort.Slice(cas, func(i, j int) bool {
		return cas[i].Cert().SubjectKey() < cas[j].Cert().SubjectKey()
	})
	return cas[:operationalCommonCount]
}

// buildRootStore constructs the device's trusted pool and the probe
// conclusiveness map from its plan. Devices without a plan trust the
// full common set plus a small hash-selected deprecated subset.
func buildRootStore(devID string, plan *RootPlan, u *rootstore.Universe) (*certs.Pool, map[string]bool) {
	pool := certs.NewPool()
	common := u.CommonCertificates(probeReferenceTime)
	deprecated := u.DeprecatedCertificates(probeReferenceTime)

	if plan == nil {
		for _, c := range common {
			pool.Add(c)
		}
		for _, c := range rankCerts(devID, deprecated) {
			if deviceRank(devID, c.SubjectKey())%5 == 0 { // ~20%
				pool.Add(c)
			}
		}
		return pool, nil
	}

	conclusive := make(map[string]bool)

	// Common set: conclusive trials are the device-ranked head, with the
	// operational CAs forced in (they must be trusted for cloud traffic
	// to validate). The store holds the head of the conclusive list.
	opSet := make(map[string]bool)
	for _, ca := range OperationalCAs(u) {
		opSet[ca.Cert().SubjectKey()] = true
	}
	rankedCommon := rankCerts(devID, common)
	sort.SliceStable(rankedCommon, func(i, j int) bool {
		// Operational CAs float to the front, preserving rank otherwise.
		return opSet[rankedCommon[i].SubjectKey()] && !opSet[rankedCommon[j].SubjectKey()]
	})
	for i, c := range rankedCommon {
		if i < plan.CommonConclusive {
			conclusive[c.SubjectKey()] = true
		}
		if i < plan.CommonIncluded {
			pool.Add(c)
		}
	}

	// Deprecated set: same scheme, with at least one explicitly
	// distrusted CA forced into the included head (the paper found one
	// in every probed device).
	rankedDep := rankCerts(devID, deprecated)
	distrustedKeys := make(map[string]bool)
	for _, ca := range u.DistrustedCAs() {
		distrustedKeys[ca.Cert().SubjectKey()] = true
	}
	hasDistrustedInHead := false
	for i := 0; i < plan.DeprecatedIncluded && i < len(rankedDep); i++ {
		if distrustedKeys[rankedDep[i].SubjectKey()] {
			hasDistrustedInHead = true
		}
	}
	if !hasDistrustedInHead {
		// Swap the first distrusted CA into the last included position.
		for i := plan.DeprecatedIncluded; i < len(rankedDep); i++ {
			if distrustedKeys[rankedDep[i].SubjectKey()] {
				rankedDep[plan.DeprecatedIncluded-1], rankedDep[i] = rankedDep[i], rankedDep[plan.DeprecatedIncluded-1]
				break
			}
		}
	}
	for i, c := range rankedDep {
		if i < plan.DeprecatedConclusive {
			conclusive[c.SubjectKey()] = true
		}
		if i < plan.DeprecatedIncluded {
			pool.Add(c)
		}
	}
	return pool, conclusive
}

// probeReferenceTime anchors unexpired-set computation to the active
// experiment window.
var probeReferenceTime = ActiveSnapshot.Start()

// Registry holds the built testbed.
type Registry struct {
	Devices  []*Device
	Universe *rootstore.Universe
	byID     map[string]*Device
}

// NewRegistry builds the full 40-device testbed against a fresh CA
// universe, with every instance configuration observing clk.
func NewRegistry(clk clock.Clock) *Registry {
	u := rootstore.NewUniverse()
	devices := catalog()
	r := &Registry{Devices: devices, Universe: u, byID: make(map[string]*Device)}
	for _, d := range devices {
		d.build(u, clk)
		r.byID[d.ID] = d
	}
	return r
}

// NewRegistryDevices builds a registry around an externally generated
// device set — the synthetic-fleet path. Devices arrive with their
// root stores (typically shared pools drawn from u) already set; each
// is finalised against clk here, exactly as the catalog's build step
// does after constructing per-device stores.
func NewRegistryDevices(u *rootstore.Universe, clk clock.Clock, devices []*Device) *Registry {
	r := &Registry{Devices: devices, Universe: u, byID: make(map[string]*Device, len(devices))}
	for _, d := range devices {
		d.Finalize(clk)
		r.byID[d.ID] = d
	}
	return r
}

// Get returns a device by ID.
func (r *Registry) Get(id string) (*Device, bool) {
	d, ok := r.byID[id]
	return d, ok
}

// Subset narrows the registry in place to the named devices — the
// sharded-fleet capture mode, where independent study processes each
// drive a disjoint device subset. Catalog order is preserved for the
// kept devices; an unknown or duplicate ID is an error and leaves the
// registry unchanged.
func (r *Registry) Subset(ids []string) error {
	keep := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := r.byID[id]; !ok {
			return fmt.Errorf("device: unknown device %q in subset", id)
		}
		if keep[id] {
			return fmt.Errorf("device: duplicate device %q in subset", id)
		}
		keep[id] = true
	}
	devices := make([]*Device, 0, len(ids))
	byID := make(map[string]*Device, len(ids))
	for _, d := range r.Devices {
		if keep[d.ID] {
			devices = append(devices, d)
			byID[d.ID] = d
		}
	}
	r.Devices, r.byID = devices, byID
	return nil
}

// ActiveDevices returns the 32 devices used in active experiments.
func (r *Registry) ActiveDevices() []*Device {
	var out []*Device
	for _, d := range r.Devices {
		if !d.PassiveOnly {
			out = append(out, d)
		}
	}
	return out
}

// TotalUnitsSoldMillions sums the estimated install base across the
// testbed (the paper: over 200 million units collectively).
func (r *Registry) TotalUnitsSoldMillions() float64 {
	total := 0.0
	for _, d := range r.Devices {
		total += d.UnitsSoldMillions
	}
	return total
}

// ProbeCandidates returns the devices eligible for root-store probing:
// active, reboot-suitable, and validating certificates on at least one
// boot connection (§5.2's exclusion rules).
func (r *Registry) ProbeCandidates() []*Device {
	var out []*Device
	for _, d := range r.ActiveDevices() {
		if !d.RebootSuitable {
			continue
		}
		if !d.validatesSomewhere() {
			continue
		}
		out = append(out, d)
	}
	return out
}

// validatesSomewhere reports whether any instance durably performs
// certificate validation. Instances with a give-up threshold (the Yi
// Camera) do not count: under the paper's repeated-interception
// experiments they behaved as non-validating, so the paper excluded
// them from probing.
func (d *Device) validatesSomewhere() bool {
	for i := range d.Slots {
		cfg := d.ConfigAt(i, ActiveSnapshot)
		if cfg.Validation != tlssim.ValidateNone && cfg.DisableValidationAfter == 0 {
			return true
		}
	}
	return false
}

// String renders a short description.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s)", d.Name, d.Category)
}

// Payload returns the application data the device sends after a
// successful handshake to host. Devices with a SensitiveToken embed it,
// exactly what an interception attack would expose.
func (d *Device) Payload(host string) string {
	if d.SensitiveToken != "" {
		return fmt.Sprintf("POST /v1/sync HTTP/1.1\r\nHost: %s\r\nAuthorization: %s\r\n\r\n", host, d.SensitiveToken)
	}
	return fmt.Sprintf("GET /v1/status HTTP/1.1\r\nHost: %s\r\n\r\n", host)
}
