package device

import (
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/tlssim"
)

// Suite lists shared by instance templates. Devices sharing a template
// produce identical TLS fingerprints — the sharing structure behind
// Figure 5.
var (
	// suitesOpenSSLOld mirrors an OpenSSL 1.0.2-era default: strong
	// ECDHE suites first but RC4/3DES still advertised.
	suitesOpenSSLOld = []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA,
		ciphers.TLS_DHE_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
		ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		ciphers.TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_MD5,
		ciphers.TLS_ECDHE_RSA_WITH_RC4_128_SHA,
	}

	// suitesModernClean has no insecure members (the six clean devices
	// of Figure 2).
	suitesModernClean = []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
		ciphers.TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
		ciphers.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
	}

	// suitesTLS13 prefixes the 1.3 suites onto the clean list.
	suitesTLS13 = append([]ciphers.Suite{
		ciphers.TLS_AES_128_GCM_SHA256,
		ciphers.TLS_AES_256_GCM_SHA384,
		ciphers.TLS_CHACHA20_POLY1305_SHA256,
	}, suitesModernClean...)

	// suitesEmbedded is a small embedded-stack list with weak members,
	// RSA key exchange first (no PFS established against RSA-preferring
	// servers).
	suitesEmbedded = []ciphers.Suite{
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
		ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
	}

	// suitesRSAOnlyLegacy: pre-PFS Apple-era list — no PFS but no
	// insecure members either (Apple TV only *added* weak suites in
	// 10/2018, Figure 2).
	suitesRSAOnlyLegacy = []ciphers.Suite{
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_256_GCM_SHA384,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
	}

	// suitesRSAOnlyWeak extends the RSA-only list with 3DES/RC4 (the
	// Samsung appliance stacks).
	suitesRSAOnlyWeak = []ciphers.Suite{
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
		ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
	}

	// suitesAppleWeakened is the post-10/2018 Apple TV list that added
	// weak members (Figure 2's surprising increase).
	suitesAppleWeakened = append(append([]ciphers.Suite(nil), suitesRSAOnlyLegacy...),
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
	)

	// suitesApplePFS is the post-3/2019 list (ECDHE first).
	suitesApplePFS = []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
	}

	// suitesAppleTLS13 adds the 1.3 suites (5/2019).
	suitesAppleTLS13 = append([]ciphers.Suite{
		ciphers.TLS_AES_128_GCM_SHA256,
		ciphers.TLS_AES_256_GCM_SHA384,
	}, suitesApplePFS...)

	// suitesAmazon is the Amazon-family shared list.
	suitesAmazon = []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
		ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
	}

	// suitesSSL3Fallback is the Amazon downgrade list (Table 5): SSL 3.0
	// with RC4/3DES only.
	suitesSSL3Fallback = []ciphers.Suite{
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
		ciphers.TLS_RSA_WITH_RC4_128_MD5,
		ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
	}

	sigalgsModern = []ciphers.SignatureAlgorithm{
		ciphers.ED25519,
		ciphers.RSA_PSS_SHA256,
		ciphers.RSA_PKCS1_SHA256,
		ciphers.ECDSA_SHA256,
	}
	sigalgsLegacy = []ciphers.SignatureAlgorithm{
		ciphers.ED25519,
		ciphers.RSA_PKCS1_SHA256,
		ciphers.RSA_PKCS1_SHA1,
	}
	// sigalgsWeakFallback is the Google Home Mini fallback (Table 5):
	// RSA_PKCS1_SHA1 only (plus ED25519, which the simulation's PKI
	// requires to verify any chain at all).
	sigalgsWeakFallback = []ciphers.SignatureAlgorithm{
		ciphers.ED25519,
		ciphers.RSA_PKCS1_SHA1,
	}
)

// rokuSuiteList approximates Roku's 73-suite ClientHello: every pre-1.3
// suite in the registry, insecure ones included.
func rokuSuiteList() []ciphers.Suite {
	var out []ciphers.Suite
	for _, info := range ciphers.All() {
		if !info.TLS13Only && !ciphers.Suite(info.ID).NullOrAnon() {
			out = append(out, info.ID)
		}
	}
	return out
}

// tmplOpts parameterises an instance template.
type tmplOpts struct {
	lib          *tlssim.LibraryProfile
	min, max     ciphers.Version
	suites       []ciphers.Suite
	sigalgs      []ciphers.SignatureAlgorithm
	groups       []uint16
	pointFormats []uint8
	alpn         []string
	ticket       bool
	renego       bool
	noSNI        bool
	validation   tlssim.ValidationMode
	disableAfter int
	revocation   tlssim.RevocationMode
}

// mk builds a Template from options.
func mk(o tmplOpts) Template {
	return func(roots *certs.Pool, clk clock.Clock) *tlssim.ClientConfig {
		sig := o.sigalgs
		if sig == nil {
			sig = sigalgsModern
		}
		groups := o.groups
		if groups == nil {
			groups = []uint16{29, 23, 24}
		}
		pf := o.pointFormats
		if pf == nil {
			pf = []uint8{0}
		}
		return &tlssim.ClientConfig{
			// Generous handshake timeout: deliberately silent servers
			// fail the device's reads immediately via netem's stall
			// signal, so the deadline only guards against bugs. It must
			// be long enough that CPU contention under the parallel
			// engine can never flip a live handshake's failure class.
			HandshakeTimeout:       5 * time.Second,
			Library:                o.lib,
			MinVersion:             o.min,
			MaxVersion:             o.max,
			CipherSuites:           append([]ciphers.Suite(nil), o.suites...),
			SignatureAlgorithms:    sig,
			SupportedGroups:        groups,
			ECPointFormats:         pf,
			ALPNProtocols:          o.alpn,
			SendSessionTicket:      o.ticket,
			SendRenegotiationInfo:  o.renego,
			SendSNI:                !o.noSNI,
			Roots:                  roots,
			Validation:             o.validation,
			DisableValidationAfter: o.disableAfter,
			Revocation:             o.revocation,
			Clock:                  clk,
		}
	}
}

// Shared templates. Devices referencing the same template share a
// fingerprint.
var (
	// tmplOpenSSLOld: the OpenSSL 1.0.2 profile shared by six devices
	// (LG TV, Wink Hub 2, Harman Invoke, Roku TV, Google Home Mini's
	// pre-1.3 era, D-Link Camera's media instance).
	tmplOpenSSLOld = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, sigalgs: sigalgsLegacy,
		ticket: true, renego: true,
		validation: tlssim.ValidateFull,
	})

	// tmplOpenSSLOld12: the same wire fingerprint but refusing versions
	// below TLS 1.2 (devices absent from Table 6).
	tmplOpenSSLOld12 = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, sigalgs: sigalgsLegacy,
		ticket: true, renego: true,
		validation: tlssim.ValidateFull,
	})

	// tmplOpenSSLOld12Staple: min-1.2 variant with OCSP stapling
	// (Harman Invoke).
	tmplOpenSSLOld12Staple = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, sigalgs: sigalgsLegacy,
		ticket: true, renego: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// tmplNoValidation12: no-validation instance that still refuses old
	// protocol versions (SmartThings' metrics instance). Clean suites —
	// the weakness here is validation, not ciphersuites.
	tmplNoValidation12 = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesModernClean, groups: []uint16{29, 23},
		validation: tlssim.ValidateNone,
	})

	// Per-vendor no-validation variants: same broken validation, small
	// configuration differences, so each camera keeps its own
	// fingerprint (the paper's fully-vulnerable devices do not cluster).
	tmplNoValidationZmodo = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesEmbedded, groups: []uint16{23},
		validation: tlssim.ValidateNone,
	})
	tmplNoValidationAmcrest = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesEmbedded, groups: []uint16{29},
		validation: tlssim.ValidateNone,
	})
	tmplNoValidationKettle = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesEmbedded, pointFormats: []uint8{0, 1},
		validation: tlssim.ValidateNone,
	})

	// tmplAppleLegacy12: Apple stack refusing old versions (HomePod CDN
	// instance at the 2021 snapshot).
	tmplAppleLegacy12 = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesRSAOnlyLegacy, alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})

	// tmplGnuTLSModernWeak: hub/appliance GnuTLS stack that still
	// advertises 3DES (keeps GE Microwave and Behmor Brewer among
	// Figure 2's 34 weak-advertising devices).
	tmplGnuTLSModernWeak = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     append(append([]ciphers.Suite(nil), suitesModernClean...), ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA),
		renego:     true,
		validation: tlssim.ValidateFull,
	})

	// tmplOpenSSLOldStaple: the same instance requesting OCSP staples.
	tmplOpenSSLOldStaple = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, sigalgs: sigalgsLegacy,
		ticket: true, renego: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// tmplAmazon: the Amazon-family shared instance (Echo Plus/Dot/Spot,
	// Fire TV base), OpenSSL-derived, stapling.
	tmplAmazon = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesAmazon, sigalgs: sigalgsLegacy,
		ticket:     true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// tmplAmazonNoStaple: Echo Plus variant (not in Table 8's stapling
	// list).
	tmplAmazonNoStaple = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesAmazon, sigalgs: sigalgsLegacy,
		ticket:     true,
		validation: tlssim.ValidateFull,
	})

	// tmplAmazonSSL3Fallback: the Table 5 downgrade configuration.
	tmplAmazonSSL3Fallback = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.SSL30, max: ciphers.SSL30,
		suites: suitesSSL3Fallback, noSNI: true,
		validation: tlssim.ValidateFull,
	})

	// tmplAmazonWrongHostname: the vulnerable Amazon instance — chain
	// validation without Common Name checks (Table 7, four devices).
	tmplAmazonWrongHostname = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesAmazon, sigalgs: sigalgsLegacy,
		validation: tlssim.ValidateNoHostname,
	})

	// tmplAndroidJSSE: Android's Java stack (Fire TV, Echo Spot boot
	// instance) — certificate_unknown for everything, not amenable.
	tmplAndroidJSSE = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesAmazon, sigalgs: sigalgsModern,
		alpn: []string{"http/1.1"}, ticket: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// tmplMbedTLS: the MbedTLS embedded profile (Echo Dot 3) — amenable
	// with bad_certificate/unknown_ca alerts.
	tmplMbedTLS = mk(tmplOpts{
		lib: tlssim.ProfileMbedTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})

	// tmplWolfEmbedded: WolfSSL embedded profile (TP-Link, Smartlife,
	// Meross, Wemo, D-Link boot) — not amenable.
	tmplWolfEmbedded12 = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
	tmplWolfEmbeddedOld = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})

	// tmplNoValidation: the embedded no-validation instance (Zmodo,
	// Amcrest, Smarter iKettle, LG TV's second instance, ...).
	tmplNoValidation = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateNone,
	})

	// tmplYiGiveUp: full validation that gives up after 3 consecutive
	// failures (§5.2's Yi Camera).
	tmplYiGiveUp = mk(tmplOpts{
		lib: tlssim.ProfileMbedTLS, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:       suitesEmbedded,
		validation:   tlssim.ValidateFull,
		disableAfter: 3,
	})

	// tmplGnuTLSModern: hub-class GnuTLS stack, silent on failure.
	tmplGnuTLSModern = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesModernClean, renego: true,
		validation: tlssim.ValidateFull,
	})
	tmplGnuTLSOld = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, renego: true,
		validation: tlssim.ValidateFull,
	})
	tmplGnuTLSModernStaple = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesModernClean, renego: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// tmplClean12: the clean single-instance profile of the six
	// Figure 2 exclusions. GnuTLS-profile (silent on failure) so the
	// clean devices stay outside Table 9's amenable set.
	tmplClean12 = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesModernClean, ticket: true,
		validation: tlssim.ValidateFull,
	})

	// tmplHomeMini12 / tmplHomeMini13: Google Home Mini before and after
	// its 5/2019 TLS 1.3 transition. OpenSSL-profile (BoringSSL), clean
	// suites, stapling.
	tmplHomeMini12 = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesModernClean, ticket: true, renego: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})
	tmplHomeMini13 = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS13,
		suites: suitesTLS13, ticket: true, renego: true,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})
	// tmplHomeMiniFallback: Table 5's cipher/signature downgrade.
	tmplHomeMiniFallback = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     []ciphers.Suite{ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA},
		sigalgs:    sigalgsWeakFallback,
		validation: tlssim.ValidateFull,
	})

	// Apple templates (SecureTransport: silent on failure, OCSP).
	tmplAppleLegacy = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesRSAOnlyLegacy, alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})
	tmplAppleWeakened = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesAppleWeakened, alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})
	tmplApplePFS = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesApplePFS, alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})
	tmplAppleTLS13 = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS12, max: ciphers.TLS13,
		suites: suitesAppleTLS13, alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})
	// tmplAppleTLS10Fallback: the HomePod downgrade (Table 5).
	tmplAppleTLS10Fallback = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS10, max: ciphers.TLS10,
		suites:     suitesRSAOnlyLegacy,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true},
	})
	// tmplHomePod13 advertises TLS 1.3 (Figure 1) while its 1.2 suite
	// list remains RSA-only — PFS arrives only with the 1/2020 update
	// (Figure 3). Its servers cap at TLS 1.2, so establishment stays RSA.
	tmplHomePod13 = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS12, max: ciphers.TLS13,
		suites: append([]ciphers.Suite{
			ciphers.TLS_AES_128_GCM_SHA256,
			ciphers.TLS_AES_256_GCM_SHA384,
		}, append(append([]ciphers.Suite(nil), suitesRSAOnlyLegacy...), ciphers.TLS_RSA_WITH_RC4_128_SHA)...),
		alpn:       []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})
	tmplHomePodPFS13 = mk(tmplOpts{
		lib: tlssim.ProfileSecureTransport, min: ciphers.TLS12, max: ciphers.TLS13,
		suites: append([]ciphers.Suite{
			ciphers.TLS_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
		}, suitesRSAOnlyLegacy...), alpn: []string{"h2", "http/1.1"},
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckOCSP: true, RequestStaple: true},
	})

	// Roku: a 73-suite-style hello, OpenSSL-derived, with the Table 5
	// single-RC4-suite fallback.
	tmplRoku = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: rokuSuiteList(), sigalgs: sigalgsLegacy, ticket: true,
		validation: tlssim.ValidateFull,
	})
	tmplRokuFallback = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     []ciphers.Suite{ciphers.TLS_RSA_WITH_RC4_128_SHA},
		validation: tlssim.ValidateFull,
	})
	// tmplRokuSecondary: Roku's second instance (platform apps).
	tmplRokuSecondary = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesModernClean,
		validation: tlssim.ValidateFull,
	})

	// Samsung appliances: Java-stack, TLS 1.1 minimum (Table 6's
	// Fridge/Dryer rows), talking to legacy servers (Figure 1).
	tmplSamsungAppliance = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS11, max: ciphers.TLS12,
		suites:     suitesRSAOnlyWeak,
		validation: tlssim.ValidateFull,
	})
	tmplSamsungApplianceStaple = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS11, max: ciphers.TLS12,
		suites:     suitesRSAOnlyWeak,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})
	// tmplSamsungTV: CRL + OCSP + stapling (the Table 8 outlier).
	tmplSamsungTV = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS10, max: ciphers.TLS12,
		suites: suitesOpenSSLOld, sigalgs: sigalgsModern,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{CheckCRL: true, CheckOCSP: true, RequestStaple: true},
	})

	// Wemo: frozen at TLS 1.0 for the entire study (Figure 1's only
	// always-insecure advertiser; Table 6's 1.0-but-not-1.1 row).
	tmplWemo = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.SSL30, max: ciphers.TLS10,
		suites: suitesEmbedded, noSNI: false,
		validation: tlssim.ValidateFull,
	})

	// Blink Hub's three eras: TLS 1.1 with weak suites, then TLS 1.2
	// (7/2018), then clean suites (5/2019), then PFS (10/2019 — folded
	// into the clean list which is ECDHE-first).
	tmplBlinkHub11 = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS10, max: ciphers.TLS11,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
	tmplBlinkHub12 = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
	tmplBlinkHubClean = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesRSAOnlyLegacy[:2],
		validation: tlssim.ValidateFull,
	})
	tmplBlinkHubPFS = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesModernClean,
		validation: tlssim.ValidateFull,
	})

	// SmartThings Hub: weak-advertising until 3/2020 (Figure 2).
	tmplSmartThingsOld = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesOpenSSLOld,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})
	tmplSmartThingsClean = mk(tmplOpts{
		lib: tlssim.ProfileGnuTLS, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesModernClean,
		validation: tlssim.ValidateFull,
		revocation: tlssim.RevocationMode{RequestStaple: true},
	})

	// Ring Doorbell: RSA-only until its 4/2018 PFS adoption (Figure 3).
	tmplRingLegacy = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     append(append([]ciphers.Suite(nil), suitesRSAOnlyLegacy...), ciphers.TLS_RSA_WITH_RC4_128_SHA),
		validation: tlssim.ValidateFull,
	})
	tmplRingPFS = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: append([]ciphers.Suite{
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
		}, append(append([]ciphers.Suite(nil), suitesRSAOnlyLegacy...), ciphers.TLS_RSA_WITH_RC4_128_SHA)...),
		validation: tlssim.ValidateFull,
	})

	// Insteon Hub's eras: TLS 1.2, a TLS 1.0-heavy period (7/2018 -
	// 8/2019), then TLS 1.2 exclusively (9/2019).
	tmplInsteon12 = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
	tmplInsteonOld = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.SSL30, max: ciphers.TLS10,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
	tmplInsteonFinal = mk(tmplOpts{
		lib: tlssim.ProfileWolfSSL, min: ciphers.TLS12, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})

	// Harman Invoke: OpenSSL boot instance plus a Microsoft-stack
	// second instance (the Figure 5 Microsoft cluster).
	tmplMicrosoftSDK = mk(tmplOpts{
		lib: tlssim.ProfileJavaJSSE, min: ciphers.TLS12, max: ciphers.TLS12,
		suites: suitesModernClean, alpn: []string{"h2"},
		validation: tlssim.ValidateFull,
	})

	// LG appliances (Dishwasher): TLS 1.0-1.2, legacy servers.
	tmplLGAppliance = mk(tmplOpts{
		lib: tlssim.ProfileOpenSSL, min: ciphers.TLS10, max: ciphers.TLS12,
		suites:     suitesEmbedded,
		validation: tlssim.ValidateFull,
	})
)
