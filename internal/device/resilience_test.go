package device

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestDelayExponentialCapped(t *testing.T) {
	r := Resilience{MaxRetries: 5, Strategy: RetryExponential,
		BaseDelay: time.Second, MaxDelay: 4 * time.Second}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, w := range want {
		if got := r.Delay(i+1, 0); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayImmediate(t *testing.T) {
	r := Resilience{MaxRetries: 2, Strategy: RetryImmediate}
	if got := r.Delay(1, 12345); got != 0 {
		t.Fatalf("immediate Delay = %v, want 0", got)
	}
}

func TestDelayJitterDeterministic(t *testing.T) {
	r := Resilience{Strategy: RetryExponential, BaseDelay: time.Second,
		MaxDelay: time.Minute, JitterFrac: 0.5}
	s1 := RetryJitter("dev-a", "s.example", 1)
	s2 := RetryJitter("dev-b", "s.example", 1)
	if s1 == s2 {
		t.Fatal("jitter seeds collide across devices")
	}
	a, b := r.Delay(1, s1), r.Delay(1, s1)
	if a != b {
		t.Fatalf("same seed gave %v then %v", a, b)
	}
	if a < time.Second || a > time.Second+time.Second/2 {
		t.Fatalf("jittered delay %v outside [1s, 1.5s]", a)
	}
}

func TestResiliencePolicyOverrides(t *testing.T) {
	reg := NewRegistry(clock.NewSimulated(StudyStart.Start()))
	yi, _ := reg.Get("yi-camera")
	if p := yi.ResiliencePolicy(); p.MaxRetries != 1 || p.Strategy != RetryImmediate {
		t.Fatalf("yi-camera policy = %+v, want explicit override", p)
	}
	kettle, _ := reg.Get("smarter-ikettle")
	if p := kettle.ResiliencePolicy(); p.MaxRetries != 0 {
		t.Fatalf("smarter-ikettle policy = %+v, want MaxRetries 0", p)
	}
	// A device with no override gets its category default.
	blink, _ := reg.Get("blink-camera")
	if p := blink.ResiliencePolicy(); p != DefaultResilience(CatCamera) {
		t.Fatalf("blink-camera policy = %+v, want category default", p)
	}
	for _, c := range Categories {
		if DefaultResilience(c).MaxRetries < 0 {
			t.Fatalf("category %s has negative MaxRetries", c)
		}
	}
}
