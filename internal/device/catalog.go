package device

import (
	"fmt"
	"time"

	"repro/internal/clock"
)

// Helpers for terse catalog entries.

func ph(year int, month time.Month, t Template) Phase {
	return Phase{From: clock.Month{Year: year, Mon: month}, Template: t}
}

func ph0(t Template) Phase { return Phase{Template: t} }

func mon(year int, month time.Month) clock.Month {
	return clock.Month{Year: year, Mon: month}
}

// d builds one destination.
func d(host string, slot int, boot bool, monthly int, srv ServerProfile, firstParty bool) Destination {
	return Destination{Host: host, Slot: slot, Boot: boot, MonthlyConns: monthly, Server: srv, FirstParty: firstParty}
}

// dn builds n numbered destinations sharing one shape.
func dn(pattern string, n, slot int, boot bool, monthly int, srv ServerProfile, firstParty bool) []Destination {
	out := make([]Destination, n)
	for i := range out {
		out[i] = d(fmt.Sprintf(pattern, i), slot, boot, monthly, srv, firstParty)
	}
	return out
}

func cat(lists ...[]Destination) []Destination {
	var out []Destination
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// catalog defines the full 40-device testbed (Table 1). Ground truth is
// aligned with every table and figure of the paper; see DESIGN.md's
// experiment index for the mapping.
func catalog() []*Device {
	full := func() (clock.Month, clock.Month) { return StudyStart, StudyEnd }
	_ = full

	var devices []*Device

	// ---------------- Cameras (7) ----------------

	devices = append(devices, &Device{
		ID: "blink-camera", UnitsSoldMillions: 3, Name: "Blink Camera", Category: CatCamera,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplClean12)}}},
		Destinations: []Destination{
			d("rest.immedia-semi.com", 0, true, 9000, SrvModernPFS, true),
			d("clips.immedia-semi.com", 0, false, 4000, SrvModernPFS, true),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2019, 6),
	})

	devices = append(devices, &Device{
		ID: "amazon-cloudcam", UnitsSoldMillions: 1, Name: "Amazon Cloudcam", Category: CatCamera,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplClean12)}}},
		Destinations: []Destination{
			d("cloudcam.amazon.com", 0, true, 11000, SrvModernPFS, true),
			d("s3.amazonaws.com", 0, false, 5000, SrvModernPFS, false),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2019, 3),
	})

	devices = append(devices, &Device{
		ID: "zmodo-doorbell", UnitsSoldMillions: 2, Name: "Zmodo Doorbell", Category: CatCamera,
		RebootSuitable: true,
		SensitiveToken: "encrypt_key=9f3a-zmodo-device-key",
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplNoValidationZmodo)}}},
		Destinations: cat(
			dn("api%d.zmodo.com", 4, 0, true, 3000, SrvRSAOnly, true),
			[]Destination{
				d("push.zmodo.com", 0, true, 2000, SrvRSAOnly, true),
				d("upgrade.zmodo.com", 0, true, 500, SrvLegacy10, true),
			},
		),
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "yi-camera", UnitsSoldMillions: 5, Name: "Yi Camera", Category: CatCamera,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplYiGiveUp)}}},
		Destinations: []Destination{
			d("api.yitechnology.com", 0, true, 7000, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		// One shot, then give up — consistent with the firmware that also
		// disables validation after repeated failures (tmplYiGiveUp).
		Resilience: &Resilience{MaxRetries: 1, Strategy: RetryImmediate},
	})

	devices = append(devices, &Device{
		ID: "dlink-camera", UnitsSoldMillions: 3, Name: "D-Link Camera", Category: CatCamera,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "boot", Phases: []Phase{ph0(tmplWolfEmbedded12)}},
			{Label: "media", Phases: []Phase{ph0(tmplOpenSSLOld12)}},
		},
		Destinations: []Destination{
			d("api.mydlink.com", 0, true, 4000, SrvModern12, true),
			d("media.mydlink.com", 1, true, 6000, SrvRSAOnly, true),
			{Host: "signal.mydlink.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 1200, Server: SrvModern12, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "amcrest-camera", UnitsSoldMillions: 2, Name: "Amcrest Camera", Category: CatCamera,
		RebootSuitable: true,
		SensitiveToken: "command-server-credential=amc-0031",
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplNoValidationAmcrest)}}},
		Destinations: []Destination{
			d("command.amcrestcloud.com", 0, true, 5000, SrvRSAOnly, true),
			d("storage.amcrestcloud.com", 0, true, 3000, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "ring-doorbell", UnitsSoldMillions: 5, Name: "Ring Doorbell", Category: CatCamera,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{
			ph0(tmplRingLegacy),
			ph(2018, 4, tmplRingPFS), // Figure 3: PFS adoption 4/2018
		}}},
		Destinations: []Destination{
			d("fw.ring.com", 0, true, 8000, SrvModern12, true),
			d("clips.ring.com", 0, false, 6000, SrvModern12, true),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2019, 9),
	})

	// ---------------- Smart Hubs (7) ----------------

	devices = append(devices, &Device{
		ID: "blink-hub", UnitsSoldMillions: 2, Name: "Blink Hub", Category: CatHub,
		RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{
			ph0(tmplBlinkHub11),
			ph(2018, 7, tmplBlinkHub12),    // Figure 1: TLS 1.2 transition
			ph(2019, 5, tmplBlinkHubClean), // Figure 2: weak suites dropped
			ph(2019, 10, tmplBlinkHubPFS),  // Figure 3: PFS adoption
		}}},
		Destinations: []Destination{
			d("rest.immedia-semi.com", 0, true, 7000, SrvModernPFS, true),
			d("updates.immedia-semi.com", 0, true, 800, SrvModernPFS, true),
			{Host: "prod.immedia-semi.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 1000, Server: SrvModernPFS, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "smartthings-hub", UnitsSoldMillions: 5, Name: "Smartthings Hub", Category: CatHub,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "main", Phases: []Phase{
				ph0(tmplSmartThingsOld),
				ph(2020, 3, tmplSmartThingsClean), // Figure 2: cleaned 3/2020
			}},
			{Label: "aux", Phases: []Phase{ph0(tmplNoValidation12)}},
		},
		Destinations: []Destination{
			d("api.smartthings.com", 0, true, 9000, SrvModernPFS, true),
			d("fw-update.smartthings.com", 0, true, 600, SrvModernPFS, true),
			d("metrics.smartthings.com", 1, true, 2500, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "philips-hub", UnitsSoldMillions: 8, Name: "Philips Hub", Category: CatHub,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplGnuTLSOld)}}},
		Destinations: []Destination{
			d("ws.meethue.com", 0, true, 6000, SrvModern12, true),
			d("diagnostics.meethue.com", 0, false, 1500, SrvModern12, true),
			{Host: "portal.meethue.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 900, Server: SrvModern12, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "wink-hub-2", UnitsSoldMillions: 1, Name: "Wink Hub 2", Category: CatHub,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "main", Phases: []Phase{
				ph0(tmplOpenSSLOldStaple),
			}},
			{Label: "legacy", Phases: []Phase{ph0(tmplNoValidation)}},
		},
		Destinations: []Destination{
			d("api.wink.com", 0, true, 8000, SrvModernPFS, true),
			d("hooks.wink.com", 1, true, 3000, SrvLegacyRC4, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 109, CommonConclusive: 119, DeprecatedIncluded: 27, DeprecatedConclusive: 72},
		// Legacy OpenSSL build: persistent reconnect with long backoff.
		Resilience: &Resilience{MaxRetries: 4, Strategy: RetryExponential,
			BaseDelay: 2 * time.Second, MaxDelay: 2 * time.Minute, JitterFrac: 0.5},
	})

	devices = append(devices, &Device{
		ID: "sengled-hub", UnitsSoldMillions: 1, Name: "Sengled Hub", Category: CatHub,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplClean12)}}},
		Destinations: []Destination{
			d("cloud.sengled.com", 0, true, 2500, SrvModernPFS, true),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2018, 9),
	})

	devices = append(devices, &Device{
		ID: "switchbot-hub", UnitsSoldMillions: 2, Name: "Switchbot Hub", Category: CatHub,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplClean12)}}},
		Destinations: []Destination{
			d("api.switch-bot.com", 0, true, 2000, SrvModernPFS, true),
			d("push.switch-bot.com", 0, false, 1000, SrvModernPFS, true),
			{Host: "fw.switch-bot.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 300, Server: SrvModernPFS, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "insteon-hub", UnitsSoldMillions: 1, Name: "Insteon Hub", Category: CatHub,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{
			ph0(tmplInsteon12),
			ph(2018, 7, tmplInsteonOld),   // Figure 1: old-version period
			ph(2019, 9, tmplInsteonFinal), // Figure 1: clean 1.2 after
		}}},
		Destinations: []Destination{
			d("connect.insteon.com", 0, true, 4000, SrvModern12, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	// ---------------- Home Automation (7) ----------------

	devices = append(devices, &Device{
		ID: "smartlife-bulb", UnitsSoldMillions: 6, Name: "Smartlife Bulb", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWolfEmbedded12)}}},
		Destinations: []Destination{
			d("a1.tuyaus.com", 0, true, 3000, SrvRSAOnly, true),
			{Host: "a2.tuyaus.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 1100, Server: SrvRSAOnly, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "smartlife-remote", UnitsSoldMillions: 2, Name: "Smartlife Remote", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWolfEmbedded12)}}},
		Destinations: []Destination{
			d("a1.tuyaus.com", 0, true, 2500, SrvRSAOnly, true),
			d("mq.tuyaus.com", 0, false, 4000, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "meross-dooropener", UnitsSoldMillions: 1, Name: "Meross Dooropener", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWolfEmbeddedOld)}}},
		Destinations: []Destination{
			d("iot.meross.com", 0, true, 2800, SrvRSAOnly, true),
			{Host: "mqtt.meross.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 1500, Server: SrvRSAOnly, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "tplink-bulb", UnitsSoldMillions: 5, Name: "TP-Link Bulb", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWolfEmbeddedOld)}}},
		Destinations: []Destination{
			d("devs.tplinkcloud.com", 0, true, 3500, SrvRSAOnly, true),
			{Host: "uploads.tplinkcloud.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 700, Server: SrvRSAOnly, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "nest-thermostat", UnitsSoldMillions: 11, Name: "Nest Thermostat", Category: CatAutomation,
		RebootSuitable: false, // §5.2: thermostats excluded from reboots
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplClean12)}}},
		Destinations: []Destination{
			d("transport.home.nest.com", 0, true, 12000, SrvModernPFS, true),
			d("time.nest.com", 0, false, 3000, SrvModernPFS, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "tplink-plug", UnitsSoldMillions: 6, Name: "TP-Link Plug", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWolfEmbedded12)}}},
		Destinations: []Destination{
			d("devs.tplinkcloud.com", 0, true, 2200, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "wemo-plug", UnitsSoldMillions: 3, Name: "Wemo Plug", Category: CatAutomation,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplWemo)}}},
		Destinations: []Destination{
			d("api.xbcs.net", 0, true, 3000, SrvLegacy10, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	// ---------------- TV (5) ----------------

	fireTVDests := cat(
		dn("fire-api%02d.amazon.com", 13, 0, true, 2500, SrvModern12, true),         // fallback-capable slot
		dn("fire-cdn%02d.amazon.com", 7, 1, true, 2000, SrvModernPFS, true),         // no-fallback slot
		[]Destination{d("det-ta-g7g.amazon.com", 2, true, 1500, SrvModern12, true)}, // WrongHostname-vulnerable
	)
	devices = append(devices, &Device{
		ID: "amazon-fire-tv", UnitsSoldMillions: 50, Name: "Amazon Fire TV", Category: CatTV,
		RebootSuitable: true,
		SensitiveToken: "Bearer atna|fire-tv-3aa",
		Slots: []*Slot{
			{Label: "system", Phases: []Phase{ph0(tmplAndroidJSSE)},
				Fallback: &Fallback{OnIncomplete: true, Template: tmplAmazonSSL3Fallback}},
			{Label: "apps", Phases: []Phase{ph0(tmplAmazon)}},
			{Label: "metrics", Phases: []Phase{ph0(tmplAmazonWrongHostname)}},
		},
		Destinations: fireTVDests,
		ActiveFrom:   StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "samsung-tv", UnitsSoldMillions: 25, Name: "Samsung TV", Category: CatTV,
		PassiveOnly: true, RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplSamsungTV)}}},
		Destinations: []Destination{
			d("api.samsungcloudsolution.com", 0, true, 15000, SrvModern12, true),
			d("ads.samsungads.com", 0, false, 9000, SrvLegacy11, false),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2019, 12),
	})

	devices = append(devices, &Device{
		ID: "lg-tv", UnitsSoldMillions: 15, Name: "LG TV", Category: CatTV,
		RebootSuitable: true,
		SensitiveToken: "deviceSecret=lgtv-7b21",
		Slots: []*Slot{
			{Label: "main", Phases: []Phase{ph0(tmplOpenSSLOldStaple)}},
			{Label: "apps", Phases: []Phase{ph0(tmplNoValidation)}},
		},
		Destinations: []Destination{
			d("lgtvsdp.com", 0, true, 14000, SrvModern12, true),
			d("smartshare.lgappstv.com", 1, true, 6000, SrvLegacyRC4, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 96, CommonConclusive: 103, DeprecatedIncluded: 48, DeprecatedConclusive: 82},
	})

	rokuDests := cat(
		dn("roku-api%02d.roku.com", 8, 0, true, 3000, SrvModern12, true),
		dn("roku-cdn%02d.roku.com", 7, 1, true, 2500, SrvModernPFS, true),
	)
	devices = append(devices, &Device{
		ID: "roku-tv", UnitsSoldMillions: 10, Name: "Roku TV", Category: CatTV,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "system", Phases: []Phase{ph0(tmplRoku)},
				Fallback: &Fallback{OnIncomplete: true, OnFailed: true, Template: tmplRokuFallback}},
			{Label: "channels", Phases: []Phase{ph0(tmplRokuSecondary)}},
		},
		Destinations: rokuDests,
		ActiveFrom:   StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 96, CommonConclusive: 106, DeprecatedIncluded: 33, DeprecatedConclusive: 81},
	})

	devices = append(devices, &Device{
		ID: "apple-tv", UnitsSoldMillions: 25, Name: "Apple TV", Category: CatTV,
		RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{
			ph0(tmplAppleLegacy),
			ph(2018, 10, tmplAppleWeakened), // Figure 2: weak suites added
			ph(2019, 3, tmplApplePFS),       // Figure 3: PFS adoption
			ph(2019, 5, tmplAppleTLS13),     // Figure 1: TLS 1.3
		}}},
		Destinations: []Destination{
			d("gs-loc.apple.com", 0, true, 10000, SrvModern12, true),
			d("xp.apple.com", 0, true, 8000, SrvModern12, true),
			d("play.itunes.apple.com", 0, false, 12000, SrvModern12, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		// Well-engineered stack: short jittered exponential backoff.
		Resilience: &Resilience{MaxRetries: 2, Strategy: RetryExponential,
			BaseDelay: 250 * time.Millisecond, MaxDelay: 5 * time.Second, JitterFrac: 0.1},
	})

	// ---------------- Audio (7) ----------------

	devices = append(devices, &Device{
		ID: "google-home-mini", UnitsSoldMillions: 30, Name: "Google Home Mini", Category: CatAudio,
		RebootSuitable: true,
		Slots: []*Slot{{Label: "main", Phases: []Phase{
			ph0(tmplHomeMini12),
			ph(2019, 5, tmplHomeMini13), // Figure 1: TLS 1.3
		}, Fallback: &Fallback{OnIncomplete: true, Template: tmplHomeMiniFallback}}},
		Destinations: cat(
			dn("home-devices%d.clients6.google.com", 5, 0, true, 9000, SrvModernPFS, true),
		),
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 119, CommonConclusive: 119, DeprecatedIncluded: 4, DeprecatedConclusive: 71},
	})

	echoPlusDests := cat(
		dn("avs-plus%d.amazon.com", 6, 0, true, 7000, SrvModern12, true),
		[]Destination{
			d("ntp-plus.amazon.com", 1, true, 1000, SrvModern12, true),
			d("todo-ta-g7g.amazon.com", 2, false, 3000, SrvModern12, true), // vulnerable app dest
		},
	)
	devices = append(devices, &Device{
		ID: "amazon-echo-plus", UnitsSoldMillions: 5, Name: "Amazon Echo Plus", Category: CatAudio,
		RebootSuitable: true,
		SensitiveToken: "Bearer atna|echo-plus-17c",
		Slots: []*Slot{
			{Label: "avs", Phases: []Phase{ph0(tmplAmazonNoStaple)},
				Fallback: &Fallback{OnIncomplete: true, Template: tmplAmazonSSL3Fallback}},
			{Label: "ntp", Phases: []Phase{ph0(tmplAmazonNoStaple)}},
			{Label: "todo", Phases: []Phase{ph0(tmplAmazonWrongHostname)}},
		},
		Destinations: echoPlusDests,
		ActiveFrom:   StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 103, CommonConclusive: 105, DeprecatedIncluded: 13, DeprecatedConclusive: 72},
	})

	echoDotDests := cat(
		dn("avs-dot%d.amazon.com", 7, 0, true, 8000, SrvModern12, true),
		[]Destination{
			d("ntp-dot.amazon.com", 1, true, 1200, SrvModern12, true),
			d("todo-dot-g7g.amazon.com", 2, true, 2500, SrvModern12, true), // vulnerable
		},
	)
	devices = append(devices, &Device{
		ID: "amazon-echo-dot", UnitsSoldMillions: 40, Name: "Amazon Echo Dot", Category: CatAudio,
		RebootSuitable: true,
		SensitiveToken: "Bearer atna|echo-dot-52e",
		Slots: []*Slot{
			{Label: "avs", Phases: []Phase{ph0(tmplAmazon)},
				Fallback: &Fallback{OnIncomplete: true, Template: tmplAmazonSSL3Fallback}},
			{Label: "ntp", Phases: []Phase{ph0(tmplAmazonNoStaple)}},
			{Label: "todo", Phases: []Phase{ph0(tmplAmazonWrongHostname)}},
		},
		Destinations: echoDotDests,
		ActiveFrom:   StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 117, CommonConclusive: 119, DeprecatedIncluded: 14, DeprecatedConclusive: 72},
	})

	devices = append(devices, &Device{
		ID: "amazon-echo-dot-3", UnitsSoldMillions: 15, Name: "Amazon Echo Dot 3", Category: CatAudio,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplMbedTLS)}}},
		Destinations: cat(
			dn("avs-dot3-%d.amazon.com", 4, 0, true, 9000, SrvModern12, true),
		),
		ActiveFrom: mon(2018, 11), ActiveTo: StudyEnd, // launched late 2018
		Plan: &RootPlan{CommonIncluded: 86, CommonConclusive: 96, DeprecatedIncluded: 17, DeprecatedConclusive: 72},
	})

	echoSpotDests := cat(
		dn("avs-spot%02d.amazon.com", 11, 0, true, 4000, SrvModern12, true),
		dn("spot-cdn%d.amazon.com", 4, 1, true, 3000, SrvModernPFS, true),
		[]Destination{
			d("spot-meta.amazon.com", 2, false, 1000, SrvModern12, true), // vulnerable
			d("spot-music.amazon.com", 1, false, 5000, SrvModernPFS, true),
		},
	)
	devices = append(devices, &Device{
		ID: "amazon-echo-spot", UnitsSoldMillions: 3, Name: "Amazon Echo Spot", Category: CatAudio,
		RebootSuitable: true,
		SensitiveToken: "Bearer atna|echo-spot-90d",
		Slots: []*Slot{
			{Label: "avs", Phases: []Phase{ph0(tmplAndroidJSSE)},
				Fallback: &Fallback{OnIncomplete: true, Template: tmplAmazonSSL3Fallback}},
			{Label: "cdn", Phases: []Phase{ph0(tmplAmazon)}},
			{Label: "meta", Phases: []Phase{ph0(tmplAmazonWrongHostname)}},
		},
		Destinations: echoSpotDests,
		ActiveFrom:   StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "harman-invoke", UnitsSoldMillions: 0.2, Name: "Harman Invoke", Category: CatAudio,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "main", Phases: []Phase{ph0(tmplOpenSSLOld12Staple)}},
			{Label: "cortana", Phases: []Phase{ph0(tmplMicrosoftSDK)}},
		},
		Destinations: []Destination{
			d("invoke.harman.com", 0, true, 5000, SrvRSAOnly, true),
			d("cortana.api.microsoft.com", 1, true, 7000, SrvModernPFS, false),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		Plan: &RootPlan{CommonIncluded: 67, CommonConclusive: 82, DeprecatedIncluded: 41, DeprecatedConclusive: 70},
	})

	homePodDests := cat(
		dn("homepod-gs%d.apple.com", 7, 0, true, 6000, SrvModern12, true),
		dn("homepod-cdn%d.apple.com", 2, 1, true, 4000, SrvModern12, true),
	)
	devices = append(devices, &Device{
		ID: "apple-homepod", UnitsSoldMillions: 4, Name: "Apple HomePod", Category: CatAudio,
		RebootSuitable: true,
		Slots: []*Slot{
			{Label: "system", Phases: []Phase{
				ph0(tmplAppleLegacy),
				ph(2019, 9, tmplHomePod13),    // Figure 1: advertises 1.3
				ph(2020, 1, tmplHomePodPFS13), // Figure 3: PFS 1/2020
			}, Fallback: &Fallback{OnIncomplete: true, Template: tmplAppleTLS10Fallback}},
			{Label: "cdn", Phases: []Phase{ph0(tmplAppleLegacy), ph(2019, 9, tmplAppleLegacy12)}},
		},
		Destinations: homePodDests,
		ActiveFrom:   mon(2018, 3), ActiveTo: StudyEnd,
	})

	// ---------------- Appliances (7) ----------------

	devices = append(devices, &Device{
		ID: "ge-microwave", UnitsSoldMillions: 0.5, Name: "GE Microwave", Category: CatAppliance,
		RebootSuitable: false,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplGnuTLSModernWeak)}}},
		Destinations: []Destination{
			d("iot.geappliances.com", 0, true, 900, SrvModern12, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "samsung-washer", UnitsSoldMillions: 2, Name: "Samsung Washer", Category: CatAppliance,
		PassiveOnly: true, RebootSuitable: false,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplSamsungAppliance)}}},
		Destinations: []Destination{
			d("washer.samsungiot.com", 0, true, 1200, SrvLegacy11, true),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2019, 2),
	})

	devices = append(devices, &Device{
		ID: "samsung-dryer", UnitsSoldMillions: 2, Name: "Samsung Dryer", Category: CatAppliance,
		RebootSuitable: false,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplSamsungAppliance)}}},
		Destinations: []Destination{
			d("dryer.samsungiot.com", 0, true, 1100, SrvLegacy11, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "samsung-fridge", UnitsSoldMillions: 2, Name: "Samsung Fridge", Category: CatAppliance,
		RebootSuitable: false,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplSamsungApplianceStaple)}}},
		Destinations: []Destination{
			d("fridge.samsungiot.com", 0, true, 2000, SrvLegacy11, true),
			d("recipes.samsungiot.com", 0, false, 800, SrvLegacy11, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		// Named "Smarter Brewer" in Tables 6/7 of the paper; Table 1
		// lists the Smarter iKettle. We use the Table 1 identity.
		ID: "smarter-ikettle", UnitsSoldMillions: 0.1, Name: "Smarter iKettle", Category: CatAppliance,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplNoValidationKettle)}}},
		Destinations: []Destination{
			d("api.smarter.am", 0, true, 700, SrvRSAOnly, true),
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
		// No retry logic at all: one failure and the kettle stays offline.
		Resilience: &Resilience{MaxRetries: 0},
	})

	devices = append(devices, &Device{
		ID: "behmor-brewer", UnitsSoldMillions: 0.1, Name: "Behmor Brewer", Category: CatAppliance,
		RebootSuitable: true,
		Slots:          []*Slot{{Label: "main", Phases: []Phase{ph0(tmplGnuTLSModernWeak)}}},
		Destinations: []Destination{
			d("api.behmor.com", 0, true, 600, SrvModern12, true),
			{Host: "recipes.behmor.com", Slot: 0, Boot: true, AfterLogin: true, MonthlyConns: 200, Server: SrvModern12, FirstParty: true},
		},
		ActiveFrom: StudyStart, ActiveTo: StudyEnd,
	})

	devices = append(devices, &Device{
		ID: "lg-dishwasher", UnitsSoldMillions: 1, Name: "LG Dishwasher", Category: CatAppliance,
		PassiveOnly: true, RebootSuitable: false,
		Slots: []*Slot{{Label: "main", Phases: []Phase{ph0(tmplLGAppliance)}}},
		Destinations: []Destination{
			d("dishwasher.lgthinq.com", 0, true, 1000, SrvLegacy10, true),
		},
		ActiveFrom: StudyStart, ActiveTo: mon(2018, 12),
	})

	return devices
}
