package device

import (
	"testing"
	"time"

	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/tlssim"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	clk := clock.NewSimulated(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	return NewRegistry(clk)
}

func TestTable1Inventory(t *testing.T) {
	r := newTestRegistry(t)
	if len(r.Devices) != 40 {
		t.Fatalf("devices = %d, want 40", len(r.Devices))
	}
	// Category sizes from Table 1.
	wantPerCat := map[Category]int{
		CatCamera: 7, CatHub: 7, CatAutomation: 7, CatTV: 5, CatAudio: 7, CatAppliance: 7,
	}
	got := map[Category]int{}
	passiveOnly := 0
	ids := map[string]bool{}
	for _, d := range r.Devices {
		got[d.Category]++
		if d.PassiveOnly {
			passiveOnly++
		}
		if ids[d.ID] {
			t.Errorf("duplicate device ID %q", d.ID)
		}
		ids[d.ID] = true
	}
	for c, want := range wantPerCat {
		if got[c] != want {
			t.Errorf("%s = %d devices, want %d", c, got[c], want)
		}
	}
	if passiveOnly != 8 {
		t.Errorf("passive-only devices = %d, want 8", passiveOnly)
	}
	if n := len(r.ActiveDevices()); n != 32 {
		t.Errorf("active devices = %d, want 32", n)
	}
}

func TestEveryDeviceWellFormed(t *testing.T) {
	r := newTestRegistry(t)
	for _, d := range r.Devices {
		if len(d.Slots) == 0 {
			t.Errorf("%s: no slots", d.ID)
		}
		if len(d.Destinations) == 0 {
			t.Errorf("%s: no destinations", d.ID)
		}
		if d.Roots == nil || d.Roots.Len() == 0 {
			t.Errorf("%s: empty root store", d.ID)
		}
		for _, dst := range d.Destinations {
			if dst.Slot < 0 || dst.Slot >= len(d.Slots) {
				t.Errorf("%s: destination %s references slot %d of %d", d.ID, dst.Host, dst.Slot, len(d.Slots))
			}
			if dst.MonthlyConns <= 0 {
				t.Errorf("%s: destination %s has no volume", d.ID, dst.Host)
			}
		}
		if d.ActiveTo.Before(d.ActiveFrom) {
			t.Errorf("%s: active window inverted", d.ID)
		}
		for i := range d.Slots {
			if cfg := d.ConfigAt(i, ActiveSnapshot); cfg == nil || cfg.Library == nil {
				t.Errorf("%s slot %d: no config at snapshot", d.ID, i)
			}
		}
		// Every active device must have at least one boot destination
		// (all 32 devices generated TLS connections on reboot, §4.1).
		if !d.PassiveOnly && len(d.BootDestinations()) == 0 {
			t.Errorf("%s: active device without boot destinations", d.ID)
		}
	}
}

func TestTable5DowngradeBehaviours(t *testing.T) {
	r := newTestRegistry(t)
	// device -> (downgraded dests, total boot dests, onFailed, onIncomplete)
	want := map[string]struct {
		down, total        int
		onFailed, onIncomp bool
	}{
		"amazon-echo-dot":  {7, 9, false, true},
		"amazon-echo-plus": {6, 7, false, true},
		"amazon-echo-spot": {11, 15, false, true},
		"amazon-fire-tv":   {13, 21, false, true},
		"apple-homepod":    {7, 9, false, true},
		"google-home-mini": {5, 5, false, true},
		"roku-tv":          {8, 15, true, true},
	}
	for id, w := range want {
		d, ok := r.Get(id)
		if !ok {
			t.Fatalf("missing device %s", id)
		}
		boot := d.BootDestinations()
		if len(boot) != w.total {
			t.Errorf("%s: boot destinations = %d, want %d", id, len(boot), w.total)
		}
		down := 0
		var fb *Fallback
		for _, dst := range boot {
			if f := d.Slots[dst.Slot].Fallback; f != nil {
				down++
				fb = f
			}
		}
		if down != w.down {
			t.Errorf("%s: fallback-capable boot dests = %d, want %d", id, down, w.down)
		}
		if fb == nil || fb.OnIncomplete != w.onIncomp || fb.OnFailed != w.onFailed {
			t.Errorf("%s: fallback triggers = %+v, want failed=%v incomplete=%v", id, fb, w.onFailed, w.onIncomp)
		}
	}
	// Devices not in Table 5 must have no fallback.
	for _, d := range r.Devices {
		if _, listed := want[d.ID]; listed {
			continue
		}
		for _, s := range d.Slots {
			if s.Fallback != nil {
				t.Errorf("%s: unexpected fallback on slot %s", d.ID, s.Label)
			}
		}
	}
}

func TestTable5FallbackConfigs(t *testing.T) {
	r := newTestRegistry(t)
	// Amazon family falls to SSL 3.0.
	for _, id := range []string{"amazon-echo-dot", "amazon-echo-plus", "amazon-echo-spot", "amazon-fire-tv"} {
		d, _ := r.Get(id)
		fb := d.FallbackConfigAt(0)
		if fb == nil || fb.MaxVersion != ciphers.SSL30 {
			t.Errorf("%s: fallback max version = %v, want SSL 3.0", id, fbVersion(fb))
		}
	}
	// HomePod falls to TLS 1.0.
	hp, _ := r.Get("apple-homepod")
	if fb := hp.FallbackConfigAt(0); fb == nil || fb.MaxVersion != ciphers.TLS10 {
		t.Errorf("homepod fallback = %v, want TLS 1.0", fbVersion(hp.FallbackConfigAt(0)))
	}
	// Home Mini falls to 3DES + SHA-1.
	mini, _ := r.Get("google-home-mini")
	fb := mini.FallbackConfigAt(0)
	if fb == nil || len(fb.CipherSuites) != 1 || fb.CipherSuites[0] != ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA {
		t.Errorf("home mini fallback suites = %v", fb.CipherSuites)
	}
	hasSHA1 := false
	for _, a := range fb.SignatureAlgorithms {
		if a == ciphers.RSA_PKCS1_SHA1 {
			hasSHA1 = true
		}
	}
	if !hasSHA1 {
		t.Error("home mini fallback missing RSA_PKCS1_SHA1")
	}
	// Roku falls to a single RC4 suite.
	roku, _ := r.Get("roku-tv")
	rfb := roku.FallbackConfigAt(0)
	if rfb == nil || len(rfb.CipherSuites) != 1 || rfb.CipherSuites[0] != ciphers.TLS_RSA_WITH_RC4_128_SHA {
		t.Errorf("roku fallback suites = %v", rfb.CipherSuites)
	}
	// Roku's main instance advertises a very large suite list ("73").
	main := roku.ConfigAt(0, ActiveSnapshot)
	if len(main.CipherSuites) < 25 {
		t.Errorf("roku main suite list = %d, want a large list", len(main.CipherSuites))
	}
}

func TestTable6OldVersionSupport(t *testing.T) {
	r := newTestRegistry(t)
	// Device -> supports TLS 1.0, supports TLS 1.1 (Table 6, at the
	// 2021 active snapshot).
	want := map[string][2]bool{
		"zmodo-doorbell":    {true, true},
		"wink-hub-2":        {true, true},
		"yi-camera":         {true, true},
		"philips-hub":       {true, true},
		"smarter-ikettle":   {true, true},
		"tplink-bulb":       {true, true},
		"roku-tv":           {true, true},
		"meross-dooropener": {true, true},
		"lg-tv":             {true, true},
		"google-home-mini":  {true, true},
		"amazon-fire-tv":    {true, true},
		"amazon-echo-spot":  {true, true},
		"amazon-echo-plus":  {true, true},
		"amazon-echo-dot":   {true, true},
		"amcrest-camera":    {true, true},
		"samsung-fridge":    {false, true},
		"samsung-dryer":     {false, true},
		"wemo-plug":         {true, false},
	}
	for _, dev := range r.ActiveDevices() {
		w, listed := want[dev.ID]
		got10, got11 := supportsVersion(dev, ciphers.TLS10), supportsVersion(dev, ciphers.TLS11)
		if listed {
			if got10 != w[0] || got11 != w[1] {
				t.Errorf("%s: supports(1.0,1.1) = (%v,%v), want (%v,%v)", dev.ID, got10, got11, w[0], w[1])
			}
		} else if got10 || got11 {
			t.Errorf("%s: unexpectedly supports old versions (1.0=%v, 1.1=%v)", dev.ID, got10, got11)
		}
	}
}

// supportsVersion reports whether any instance can negotiate v at the
// active snapshot.
func supportsVersion(d *Device, v ciphers.Version) bool {
	for i := range d.Slots {
		cfg := d.ConfigAt(i, ActiveSnapshot)
		if cfg.MinVersion <= v && v <= cfg.MaxVersion {
			return true
		}
	}
	return false
}

func TestTable7ValidationGroundTruth(t *testing.T) {
	r := newTestRegistry(t)
	// Fully vulnerable devices: at least one no-validation instance.
	fullyVulnerable := map[string]int{ // device -> vulnerable/total dests
		"zmodo-doorbell":  6,
		"amcrest-camera":  2,
		"smarter-ikettle": 1,
		"yi-camera":       1,
		"wink-hub-2":      1,
		"lg-tv":           1,
		"smartthings-hub": 1,
	}
	wrongHostname := map[string]bool{
		"amazon-echo-plus": true, "amazon-echo-dot": true,
		"amazon-echo-spot": true, "amazon-fire-tv": true,
	}
	for _, dev := range r.ActiveDevices() {
		noval, nohost := 0, 0
		for _, dst := range dev.Destinations {
			switch dev.ConfigAt(dst.Slot, ActiveSnapshot).Validation {
			case tlssim.ValidateNone:
				noval++
			case tlssim.ValidateNoHostname:
				nohost++
			}
		}
		// The Yi camera's give-up behaviour makes it effectively
		// no-validation under repeated attack.
		if dev.ID == "yi-camera" {
			if dev.ConfigAt(0, ActiveSnapshot).DisableValidationAfter != 3 {
				t.Errorf("yi-camera: give-up threshold = %d, want 3", dev.ConfigAt(0, ActiveSnapshot).DisableValidationAfter)
			}
			noval++
		}
		if want, ok := fullyVulnerable[dev.ID]; ok {
			if noval != want {
				t.Errorf("%s: no-validation destinations = %d, want %d", dev.ID, noval, want)
			}
		} else if noval > 0 {
			t.Errorf("%s: unexpected no-validation destinations (%d)", dev.ID, noval)
		}
		if wrongHostname[dev.ID] {
			if nohost != 1 {
				t.Errorf("%s: wrong-hostname destinations = %d, want 1", dev.ID, nohost)
			}
		} else if nohost > 0 {
			t.Errorf("%s: unexpected wrong-hostname destinations (%d)", dev.ID, nohost)
		}
	}
}

func TestTable8RevocationGroundTruth(t *testing.T) {
	r := newTestRegistry(t)
	wantCRL := map[string]bool{"samsung-tv": true}
	wantOCSP := map[string]bool{"samsung-tv": true, "apple-tv": true, "apple-homepod": true}
	wantStaple := map[string]bool{
		"amazon-fire-tv": true, "samsung-tv": true, "amazon-echo-spot": true,
		"apple-homepod": true, "apple-tv": true, "harman-invoke": true,
		"amazon-echo-dot": true, "wink-hub-2": true, "google-home-mini": true,
		"lg-tv": true, "samsung-fridge": true, "smartthings-hub": true,
	}
	for _, dev := range r.Devices {
		var crl, ocsp, staple bool
		for i := range dev.Slots {
			rev := dev.ConfigAt(i, ActiveSnapshot).Revocation
			crl = crl || rev.CheckCRL
			ocsp = ocsp || rev.CheckOCSP
			staple = staple || rev.RequestStaple
		}
		if crl != wantCRL[dev.ID] {
			t.Errorf("%s: CRL = %v, want %v", dev.ID, crl, wantCRL[dev.ID])
		}
		if ocsp != wantOCSP[dev.ID] {
			t.Errorf("%s: OCSP = %v, want %v", dev.ID, ocsp, wantOCSP[dev.ID])
		}
		if staple != wantStaple[dev.ID] {
			t.Errorf("%s: stapling = %v, want %v", dev.ID, staple, wantStaple[dev.ID])
		}
	}
	if len(wantStaple) != 12 {
		t.Fatalf("stapling ground truth covers %d devices, want 12 (Table 8)", len(wantStaple))
	}
}

func TestTable9PlansAndRootStores(t *testing.T) {
	r := newTestRegistry(t)
	plans := map[string]RootPlan{
		"google-home-mini":  {119, 119, 4, 71},
		"amazon-echo-plus":  {103, 105, 13, 72},
		"amazon-echo-dot":   {117, 119, 14, 72},
		"amazon-echo-dot-3": {86, 96, 17, 72},
		"wink-hub-2":        {109, 119, 27, 72},
		"roku-tv":           {96, 106, 33, 81},
		"lg-tv":             {96, 103, 48, 82},
		"harman-invoke":     {67, 82, 41, 70},
	}
	for id, want := range plans {
		dev, ok := r.Get(id)
		if !ok || dev.Plan == nil {
			t.Fatalf("%s: missing plan", id)
		}
		if *dev.Plan != want {
			t.Errorf("%s: plan = %+v, want %+v", id, *dev.Plan, want)
		}
		// The store size equals included common + included deprecated.
		if got := dev.Roots.Len(); got != want.CommonIncluded+want.DeprecatedIncluded {
			t.Errorf("%s: store size = %d, want %d", id, got, want.CommonIncluded+want.DeprecatedIncluded)
		}
		// Every probed device trusts at least one distrusted CA (§5.2).
		hasDistrusted := false
		for _, ca := range r.Universe.DistrustedCAs() {
			if dev.Roots.Contains(ca.Cert()) {
				hasDistrusted = true
			}
		}
		if !hasDistrusted {
			t.Errorf("%s: no distrusted CA in store", id)
		}
		// Probed devices must use an amenable library on slot 0.
		if lib := dev.ConfigAt(0, ActiveSnapshot).Library; !lib.Amenable() {
			t.Errorf("%s: probe slot library %s not amenable", id, lib.Name)
		}
	}
	if len(plans) != 8 {
		t.Fatalf("plans cover %d devices, want 8", len(plans))
	}
}

func TestProbeCandidatesMatchPaper(t *testing.T) {
	r := newTestRegistry(t)
	cands := r.ProbeCandidates()
	if len(cands) != 24 {
		var ids []string
		for _, d := range cands {
			ids = append(ids, d.ID)
		}
		t.Fatalf("probe candidates = %d, want 24 (§5.2): %v", len(cands), ids)
	}
	amenable := 0
	for _, d := range cands {
		if d.ConfigAt(0, ActiveSnapshot).Library.Amenable() && d.Plan != nil {
			amenable++
		}
	}
	if amenable != 8 {
		t.Fatalf("amenable candidates = %d, want 8 (Table 9)", amenable)
	}
	// Amenable-but-unplanned candidates would silently break Table 9.
	for _, d := range cands {
		if d.ConfigAt(0, ActiveSnapshot).Library.Amenable() && d.Plan == nil {
			t.Errorf("%s: amenable probe candidate without a Table 9 plan", d.ID)
		}
	}
}

func TestProbeConclusiveCounts(t *testing.T) {
	r := newTestRegistry(t)
	u := r.Universe
	common := u.CommonCertificates(probeReferenceTime)
	dep := u.DeprecatedCertificates(probeReferenceTime)
	for _, id := range []string{"google-home-mini", "lg-tv", "harman-invoke"} {
		dev, _ := r.Get(id)
		nc, nd := 0, 0
		for _, c := range common {
			if dev.ProbeConclusive(c) {
				nc++
			}
		}
		for _, c := range dep {
			if dev.ProbeConclusive(c) {
				nd++
			}
		}
		if nc != dev.Plan.CommonConclusive {
			t.Errorf("%s: conclusive common = %d, want %d", id, nc, dev.Plan.CommonConclusive)
		}
		if nd != dev.Plan.DeprecatedConclusive {
			t.Errorf("%s: conclusive deprecated = %d, want %d", id, nd, dev.Plan.DeprecatedConclusive)
		}
	}
	// Devices without a plan always respond.
	nest, _ := r.Get("nest-thermostat")
	if !nest.ProbeConclusive(common[0]) {
		t.Error("plan-less device should always be conclusive")
	}
}

func TestIncludedCountsWithinConclusive(t *testing.T) {
	// The Table 9 numerators: |store ∩ conclusive ∩ testset| must equal
	// the plan's included counts exactly.
	r := newTestRegistry(t)
	u := r.Universe
	common := u.CommonCertificates(probeReferenceTime)
	dep := u.DeprecatedCertificates(probeReferenceTime)
	for _, dev := range r.Devices {
		if dev.Plan == nil {
			continue
		}
		nc, nd := 0, 0
		for _, c := range common {
			if dev.ProbeConclusive(c) && dev.Roots.Contains(c) {
				nc++
			}
		}
		for _, c := range dep {
			if dev.ProbeConclusive(c) && dev.Roots.Contains(c) {
				nd++
			}
		}
		if nc != dev.Plan.CommonIncluded {
			t.Errorf("%s: conclusive∩included common = %d, want %d", dev.ID, nc, dev.Plan.CommonIncluded)
		}
		if nd != dev.Plan.DeprecatedIncluded {
			t.Errorf("%s: conclusive∩included deprecated = %d, want %d", dev.ID, nd, dev.Plan.DeprecatedIncluded)
		}
	}
}

func TestOperationalCAsTrustedEverywhere(t *testing.T) {
	r := newTestRegistry(t)
	ops := OperationalCAs(r.Universe)
	if len(ops) != 6 {
		t.Fatalf("operational CAs = %d", len(ops))
	}
	for _, dev := range r.Devices {
		for _, ca := range ops {
			if !dev.Roots.Contains(ca.Cert()) {
				t.Errorf("%s does not trust operational CA %s", dev.ID, ca.Cert().Subject.CommonName)
			}
		}
	}
}

func TestPhaseTransitions(t *testing.T) {
	r := newTestRegistry(t)
	// Apple TV: TLS 1.3 from 5/2019 (Figure 1).
	atv, _ := r.Get("apple-tv")
	if got := atv.ConfigAt(0, mon(2019, 4)).MaxVersion; got != ciphers.TLS12 {
		t.Errorf("apple-tv 2019-04 max = %v, want 1.2", got)
	}
	if got := atv.ConfigAt(0, mon(2019, 5)).MaxVersion; got != ciphers.TLS13 {
		t.Errorf("apple-tv 2019-05 max = %v, want 1.3", got)
	}
	// Apple TV: weak suites added 10/2018 (Figure 2).
	if ciphers.AnyInsecure(atv.ConfigAt(0, mon(2018, 9)).CipherSuites) {
		t.Error("apple-tv advertised insecure suites before 10/2018")
	}
	if !ciphers.AnyInsecure(atv.ConfigAt(0, mon(2018, 10)).CipherSuites) {
		t.Error("apple-tv did not add insecure suites 10/2018")
	}
	// Google Home Mini: TLS 1.3 from 5/2019.
	mini, _ := r.Get("google-home-mini")
	if got := mini.ConfigAt(0, mon(2019, 5)).MaxVersion; got != ciphers.TLS13 {
		t.Errorf("home-mini 2019-05 max = %v, want 1.3", got)
	}
	// Blink Hub: TLS 1.2 from 7/2018 (Figure 1), clean suites 5/2019
	// (Figure 2), PFS 10/2019 (Figure 3).
	bh, _ := r.Get("blink-hub")
	if got := bh.ConfigAt(0, mon(2018, 6)).MaxVersion; got != ciphers.TLS11 {
		t.Errorf("blink-hub 2018-06 max = %v, want 1.1", got)
	}
	if got := bh.ConfigAt(0, mon(2018, 7)).MaxVersion; got != ciphers.TLS12 {
		t.Errorf("blink-hub 2018-07 max = %v, want 1.2", got)
	}
	if !ciphers.AnyInsecure(bh.ConfigAt(0, mon(2019, 4)).CipherSuites) {
		t.Error("blink-hub should advertise insecure suites before 5/2019")
	}
	if ciphers.AnyInsecure(bh.ConfigAt(0, mon(2019, 5)).CipherSuites) {
		t.Error("blink-hub should be clean from 5/2019")
	}
	if ciphers.AnyStrong(bh.ConfigAt(0, mon(2019, 9)).CipherSuites) {
		t.Error("blink-hub should lack PFS before 10/2019")
	}
	if !ciphers.AnyStrong(bh.ConfigAt(0, mon(2019, 10)).CipherSuites) {
		t.Error("blink-hub should offer PFS from 10/2019")
	}
	// Ring Doorbell: PFS from 4/2018 (Figure 3).
	ring, _ := r.Get("ring-doorbell")
	if ciphers.AnyStrong(ring.ConfigAt(0, mon(2018, 3)).CipherSuites) {
		t.Error("ring should lack PFS before 4/2018")
	}
	if !ciphers.AnyStrong(ring.ConfigAt(0, mon(2018, 4)).CipherSuites) {
		t.Error("ring should offer PFS from 4/2018")
	}
	// Insteon Hub: old period 7/2018-8/2019, then 1.2 (Figure 1).
	ins, _ := r.Get("insteon-hub")
	if got := ins.ConfigAt(0, mon(2018, 8)).MaxVersion; got != ciphers.TLS10 {
		t.Errorf("insteon 2018-08 max = %v, want 1.0", got)
	}
	if got := ins.ConfigAt(0, mon(2019, 9)).MaxVersion; got != ciphers.TLS12 {
		t.Errorf("insteon 2019-09 max = %v, want 1.2", got)
	}
}

func TestWemoFrozenAtTLS10(t *testing.T) {
	r := newTestRegistry(t)
	w, _ := r.Get("wemo-plug")
	for _, m := range clock.MonthRange(StudyStart, StudyEnd) {
		if got := w.ConfigAt(0, m).MaxVersion; got != ciphers.TLS10 {
			t.Fatalf("wemo max at %v = %v, want TLS 1.0 always", m, got)
		}
	}
}

func TestCleanDevicesNeverAdvertiseInsecure(t *testing.T) {
	// The six Figure 2 exclusions.
	r := newTestRegistry(t)
	clean := []string{"google-home-mini", "nest-thermostat", "blink-camera",
		"amazon-cloudcam", "sengled-hub", "switchbot-hub"}
	for _, id := range clean {
		d, _ := r.Get(id)
		for _, m := range clock.MonthRange(StudyStart, StudyEnd) {
			for i := range d.Slots {
				if ciphers.AnyInsecure(d.ConfigAt(i, m).CipherSuites) {
					t.Errorf("%s advertises insecure suites in %v", id, m)
				}
			}
		}
	}
}

func TestMultiInstanceDeviceCount(t *testing.T) {
	// §5.3: 14/32 active devices show multiple fingerprints. Our ground
	// truth: count active devices with >1 slot dialing at boot.
	r := newTestRegistry(t)
	multi := 0
	for _, d := range r.ActiveDevices() {
		slots := map[int]bool{}
		for _, dst := range d.BootDestinations() {
			slots[dst.Slot] = true
		}
		if len(slots) > 1 {
			multi++
		}
	}
	if multi < 8 || multi > 14 {
		t.Errorf("multi-instance active devices = %d, want in [8, 14] (paper: 14)", multi)
	}
}

func TestRegistryDeterministic(t *testing.T) {
	clk := clock.NewSimulated(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	a := NewRegistry(clk)
	b := NewRegistry(clk)
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.ID != db.ID || da.Roots.Len() != db.Roots.Len() {
			t.Fatalf("registries differ at %d: %s/%d vs %s/%d", i, da.ID, da.Roots.Len(), db.ID, db.Roots.Len())
		}
		for _, c := range da.Roots.All() {
			if !db.Roots.Contains(c) {
				t.Fatalf("%s: store contents differ", da.ID)
			}
		}
	}
}

func TestGetAndProbeDestination(t *testing.T) {
	r := newTestRegistry(t)
	if _, ok := r.Get("nonexistent"); ok {
		t.Error("Get found nonexistent device")
	}
	d, _ := r.Get("google-home-mini")
	dst, ok := d.ProbeDestination()
	if !ok || dst.Slot != 0 || !dst.Boot {
		t.Fatalf("probe destination = %+v, %v", dst, ok)
	}
}

func fbVersion(c *tlssim.ClientConfig) interface{} {
	if c == nil {
		return nil
	}
	return c.MaxVersion
}

func TestUnitsSoldCollectively(t *testing.T) {
	// Abstract: the tested devices represent over 200 million units
	// sold collectively.
	r := newTestRegistry(t)
	if total := r.TotalUnitsSoldMillions(); total < 200 {
		t.Fatalf("total units sold = %.1fM, want > 200M", total)
	}
	for _, d := range r.Devices {
		if d.UnitsSoldMillions <= 0 {
			t.Errorf("%s has no install-base estimate", d.ID)
		}
	}
}
