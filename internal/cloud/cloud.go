// Package cloud stands up the server side of the IoT ecosystem: one TLS
// endpoint per device destination, with a capability profile that models
// how much of the clients' security the real-world servers supported
// (§5.1 found server support, not device support, limiting many
// connections), plus the OCSP/CRL responder endpoints revocation-
// checking devices contact (Table 8).
package cloud

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/device"
	"repro/internal/netem"
	"repro/internal/tlssim"
)

// Responder host names for the simulated CA infrastructure.
const (
	OCSPHost = "ocsp.sim-ca.com"
	CRLHost  = "crl.sim-ca.com"
)

// Cloud is the collection of simulated cloud services.
type Cloud struct {
	Network *netem.Network
	CA      certs.KeyPair

	mu      sync.Mutex
	servers map[string]*tlssim.ServerConfig // host -> config

	// RevocationHits counts OCSP/CRL fetches by source host.
	revMu          sync.Mutex
	ocspHits       map[string]int
	crlHits        map[string]int
	handshakeCount int
}

// certValidity is the validity window for cloud leaf certificates: wide
// enough to span the passive study and the 2021 active snapshot.
var (
	certNotBefore = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	certNotAfter  = time.Date(2031, 1, 1, 0, 0, 0, 0, time.UTC)
)

// New builds the cloud for every destination in the registry and
// registers all listeners on the network. The PKI chains to the first
// operational CA of the registry's universe, which every device trusts.
func New(nw *netem.Network, reg *device.Registry) *Cloud {
	ops := device.OperationalCAs(reg.Universe)
	c := &Cloud{
		Network:  nw,
		CA:       ops[0].Pair,
		servers:  make(map[string]*tlssim.ServerConfig),
		ocspHits: make(map[string]int),
		crlHits:  make(map[string]int),
	}

	seen := map[string]bool{}
	for _, dev := range reg.Devices {
		for _, dst := range dev.Destinations {
			if seen[dst.Host] {
				continue
			}
			seen[dst.Host] = true
			c.addServer(dst.Host, dst.Server)
		}
	}
	c.registerResponders()
	return c
}

// addServer creates the endpoint's certificate and listener.
func (c *Cloud) addServer(host string, profile device.ServerProfile) {
	leaf := c.CA.Issue(certs.Template{
		SerialNumber: serialFor(host),
		Subject:      certs.Name{CommonName: host, Organization: "Cloud Services", Country: "US"},
		NotBefore:    certNotBefore,
		NotAfter:     certNotAfter,
		DNSNames:     []string{host},
		OCSPServer:   OCSPHost,
		CRLServer:    CRLHost,
	}, "cloud-leaf-"+host)

	cfg := &tlssim.ServerConfig{
		Chain: []*certs.Certificate{leaf.Cert, c.CA.Cert},
		Key:   leaf,
		// Generous: honest clients always answer, and contention under
		// the parallel engine must not flip a handshake's outcome.
		HandshakeTimeout: 5 * time.Second,
		OCSPStaple:       true,
		Telemetry:        c.Network.Telemetry(),
	}
	switch profile {
	case device.SrvModernPFS:
		cfg.MinVersion, cfg.MaxVersion = ciphers.TLS10, ciphers.TLS13
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		}
	case device.SrvModern12:
		cfg.MinVersion, cfg.MaxVersion = ciphers.TLS10, ciphers.TLS12
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		}
	case device.SrvRSAOnly:
		cfg.MinVersion, cfg.MaxVersion = ciphers.TLS10, ciphers.TLS12
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
			ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		}
	case device.SrvLegacy11:
		cfg.MinVersion, cfg.MaxVersion = ciphers.SSL30, ciphers.TLS11
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_AES_256_CBC_SHA,
			ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
		}
	case device.SrvLegacy10:
		cfg.MinVersion, cfg.MaxVersion = ciphers.SSL30, ciphers.TLS10
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
			ciphers.TLS_RSA_WITH_RC4_128_SHA,
		}
	case device.SrvLegacyRC4:
		cfg.MinVersion, cfg.MaxVersion = ciphers.SSL30, ciphers.TLS10
		cfg.CipherSuites = []ciphers.Suite{
			ciphers.TLS_RSA_WITH_RC4_128_SHA,
			ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		}
	}

	c.mu.Lock()
	c.servers[host] = cfg
	c.mu.Unlock()
	c.Network.Listen(host, 443, c.serveTLS(host))
}

// serveTLS returns the connection handler for host.
func (c *Cloud) serveTLS(host string) netem.Handler {
	return func(conn net.Conn, meta netem.ConnMeta) {
		c.mu.Lock()
		cfg := c.servers[host]
		c.mu.Unlock()
		res := tlssim.Serve(conn, cfg)
		if res.Err != nil {
			return
		}
		c.revMu.Lock()
		c.handshakeCount++
		c.revMu.Unlock()
		sess := res.Session
		defer sess.Close()
		// Read the device's request and answer it.
		buf := make([]byte, 1024)
		sess.Conn.Conn.SetDeadline(time.Now().Add(c.Network.IODeadline()))
		if _, err := sess.Conn.Read(buf); err != nil {
			return
		}
		fmt.Fprintf(sess.Conn, "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	}
}

// ServerConfigFor exposes the config for host (testing and the Table 6
// force-version experiment).
func (c *Cloud) ServerConfigFor(host string) (*tlssim.ServerConfig, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg, ok := c.servers[host]
	return cfg, ok
}

// SetForceVersion temporarily forces the version the host's server
// negotiates (0 restores normal negotiation). Used by the Table 6
// old-version establishment experiment.
func (c *Cloud) SetForceVersion(host string, v ciphers.Version) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg, ok := c.servers[host]
	if !ok {
		return false
	}
	cfg.ForceVersion = v
	if v != 0 && v < cfg.MinVersion {
		cfg.MinVersion = v
	}
	return true
}

// registerResponders installs the OCSP and CRL endpoints (plain TCP,
// port 80) whose traffic Table 8 counts.
func (c *Cloud) registerResponders() {
	c.Network.Listen(OCSPHost, 80, func(conn net.Conn, meta netem.ConnMeta) {
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(c.Network.IODeadline()))
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil || !strings.HasPrefix(string(buf[:n]), "OCSP-CHECK") {
			return
		}
		c.revMu.Lock()
		c.ocspHits[meta.SrcHost]++
		c.revMu.Unlock()
		c.Network.Telemetry().Counter("cloud.ocsp_hits").Inc()
		conn.Write([]byte("OCSP-GOOD\n"))
	})
	c.Network.Listen(CRLHost, 80, func(conn net.Conn, meta netem.ConnMeta) {
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(c.Network.IODeadline()))
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil || !strings.HasPrefix(string(buf[:n]), "CRL-FETCH") {
			return
		}
		c.revMu.Lock()
		c.crlHits[meta.SrcHost]++
		c.revMu.Unlock()
		c.Network.Telemetry().Counter("cloud.crl_hits").Inc()
		conn.Write([]byte("CRL-EMPTY\n"))
	})
}

// OCSPHits returns per-device OCSP fetch counts.
func (c *Cloud) OCSPHits() map[string]int {
	c.revMu.Lock()
	defer c.revMu.Unlock()
	out := make(map[string]int, len(c.ocspHits))
	for k, v := range c.ocspHits {
		out[k] = v
	}
	return out
}

// CRLHits returns per-device CRL fetch counts.
func (c *Cloud) CRLHits() map[string]int {
	c.revMu.Lock()
	defer c.revMu.Unlock()
	out := make(map[string]int, len(c.crlHits))
	for k, v := range c.crlHits {
		out[k] = v
	}
	return out
}

// Handshakes reports completed server-side handshakes.
func (c *Cloud) Handshakes() int {
	c.revMu.Lock()
	defer c.revMu.Unlock()
	return c.handshakeCount
}

// serialFor derives a stable serial number for a host certificate.
func serialFor(host string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(host); i++ {
		h ^= uint64(host[i])
		h *= 1099511628211
	}
	return h | 0x8000000000000000
}

// ValidAtStudyTime reports whether the cloud PKI is valid across the
// whole simulated window (a sanity helper for tests).
func ValidAtStudyTime() bool {
	start := clock.Month{Year: 2018, Mon: 1}.Start()
	end := clock.Month{Year: 2021, Mon: 12}.Start()
	return certNotBefore.Before(start) && certNotAfter.After(end)
}
