package cloud

import (
	"strings"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/device"
	"repro/internal/driver"
	"repro/internal/netem"
)

func newCloud(t *testing.T) (*netem.Network, *device.Registry, *Cloud) {
	t.Helper()
	clk := clock.NewSimulated(device.StudyStart.Start())
	nw := netem.New(clk)
	reg := device.NewRegistry(clk)
	return nw, reg, New(nw, reg)
}

func TestEveryDestinationHasAServer(t *testing.T) {
	_, reg, cl := newCloud(t)
	for _, dev := range reg.Devices {
		for _, dst := range dev.Destinations {
			if _, ok := cl.ServerConfigFor(dst.Host); !ok {
				t.Errorf("no server for %s (%s)", dst.Host, dev.ID)
			}
		}
	}
}

func TestServerCertificatesValid(t *testing.T) {
	_, reg, cl := newCloud(t)
	if !ValidAtStudyTime() {
		t.Fatal("cloud PKI window does not cover the study")
	}
	// Every server's chain validates against every device's root store
	// (the operational CAs are universally trusted).
	dev, _ := reg.Get("nest-thermostat")
	cfg, _ := cl.ServerConfigFor("transport.home.nest.com")
	if len(cfg.Chain) != 2 {
		t.Fatalf("chain length = %d", len(cfg.Chain))
	}
	if !dev.Roots.Contains(cfg.Chain[1]) {
		t.Fatal("device does not trust the cloud CA")
	}
	if cfg.Chain[0].OCSPServer != OCSPHost || cfg.Chain[0].CRLServer != CRLHost {
		t.Fatal("revocation endpoints missing from leaf")
	}
}

func TestProfilesNegotiateAsConfigured(t *testing.T) {
	nw, reg, _ := newCloud(t)
	cases := []struct {
		devID, host string
		wantVersion ciphers.Version
		wantStrong  bool
	}{
		{"nest-thermostat", "transport.home.nest.com", ciphers.TLS12, true}, // modern-pfs vs 1.2 client
		{"samsung-fridge", "fridge.samsungiot.com", ciphers.TLS11, false},   // legacy-11
		{"wemo-plug", "api.xbcs.net", ciphers.TLS10, false},                 // legacy-10
		{"zmodo-doorbell", "api0.zmodo.com", ciphers.TLS12, false},          // rsa-only
	}
	for _, c := range cases {
		dev, _ := reg.Get(c.devID)
		var dst device.Destination
		for _, d := range dev.Destinations {
			if d.Host == c.host {
				dst = d
			}
		}
		out := driver.Connect(nw, dev, dst, device.StudyStart, 1)
		if !out.Established {
			t.Errorf("%s -> %s failed: %v", c.devID, c.host, out.Err)
			continue
		}
		if out.Version != c.wantVersion {
			t.Errorf("%s -> %s version = %v, want %v", c.devID, c.host, out.Version, c.wantVersion)
		}
		if got := out.Suite.Strong(); got != c.wantStrong {
			t.Errorf("%s -> %s strong = %v (suite %v), want %v", c.devID, c.host, got, out.Suite, c.wantStrong)
		}
	}
}

func TestForceVersionRoundTrip(t *testing.T) {
	nw, reg, cl := newCloud(t)
	dev, _ := reg.Get("zmodo-doorbell")
	host := dev.Destinations[0].Host
	if !cl.SetForceVersion(host, ciphers.TLS10) {
		t.Fatal("SetForceVersion failed")
	}
	out := driver.Connect(nw, dev, dev.Destinations[0], device.StudyStart, 1)
	if !out.Established || out.Version != ciphers.TLS10 {
		t.Fatalf("forced connect = %+v", out)
	}
	cl.SetForceVersion(host, 0)
	out = driver.Connect(nw, dev, dev.Destinations[0], device.StudyStart, 2)
	if !out.Established || out.Version != ciphers.TLS12 {
		t.Fatalf("restored connect = %+v", out)
	}
	if cl.SetForceVersion("missing.example.com", ciphers.TLS10) {
		t.Fatal("SetForceVersion succeeded for unknown host")
	}
}

func TestHandshakeCounter(t *testing.T) {
	nw, reg, cl := newCloud(t)
	dev, _ := reg.Get("behmor-brewer")
	driver.Connect(nw, dev, dev.Destinations[0], device.StudyStart, 1)
	if cl.Handshakes() != 1 {
		t.Fatalf("handshakes = %d", cl.Handshakes())
	}
}

func TestRespondersRejectGarbage(t *testing.T) {
	nw, _, cl := newCloud(t)
	conn, err := nw.Dial("tester", OCSPHost, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GARBAGE\n"))
	buf := make([]byte, 16)
	n, _ := conn.Read(buf)
	conn.Close()
	if n > 0 && strings.Contains(string(buf[:n]), "OCSP-GOOD") {
		t.Fatal("responder answered garbage")
	}
	if len(cl.OCSPHits()) != 0 {
		t.Fatal("garbage counted as OCSP hit")
	}
}
