package tlssim

import (
	"errors"
	"strings"

	"repro/internal/telemetry"
)

// metricLabel makes a value safe as a dot-scoped metric-name segment
// (version strings like "TLS 1.2" carry spaces).
func metricLabel(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}

// finishClientFailure records the client-side outcome counters and ends
// the handshake span with the failure class. The alert taxonomy is
// attributed to the library profile: the paper's probing technique
// reads exactly this per-library alert behaviour (Table 4).
func finishClientFailure(tel *telemetry.Registry, cfg *ClientConfig, sp *telemetry.Span, err error) {
	tel.Counter("tlssim.client.handshakes").Inc()
	tel.Counter("tlssim.client.failed").Inc()
	class := "error"
	var he *HandshakeError
	if errors.As(err, &he) {
		class = he.Class.String()
		if he.Alert != nil {
			dir := "sent"
			if he.Class == FailAlertReceived {
				dir = "received"
			}
			desc := metricLabel(he.Alert.Description.String())
			tel.Counter("tlssim.alerts." + dir + "." + desc).Inc()
			if cfg.Library != nil && dir == "sent" {
				tel.Counter("tlssim.client.lib." + metricLabel(cfg.Library.Name) + ".alerts." + desc).Inc()
			}
		} else {
			tel.Counter("tlssim.alerts.none").Inc()
		}
	}
	tel.Counter("tlssim.client.failed." + class).Inc()
	if cfg.Library != nil {
		tel.Counter("tlssim.client.lib." + metricLabel(cfg.Library.Name) + ".failed").Inc()
	}
	sp.End(class)
}

// finishClientSuccess records establishment counters and ends the span.
func finishClientSuccess(tel *telemetry.Registry, cfg *ClientConfig, sp *telemetry.Span, sess *Session) {
	tel.Counter("tlssim.client.handshakes").Inc()
	tel.Counter("tlssim.client.established").Inc()
	tel.Counter("tlssim.client.established.version." + metricLabel(sess.Version.String())).Inc()
	tel.Counter("tlssim.client.established.suite." + sess.Suite.String()).Inc()
	if sess.ValidationBypassed {
		tel.Counter("tlssim.client.validation_bypassed").Inc()
	}
	if cfg.Library != nil {
		tel.Counter("tlssim.client.lib." + metricLabel(cfg.Library.Name) + ".established").Inc()
	}
	sp.End("established")
}
