package tlssim

import (
	"crypto/sha256"
	"encoding/binary"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ValidationMode selects how a client validates server certificates.
// The modes correspond directly to the vulnerability classes of Table 7.
type ValidationMode int

const (
	// ValidateFull performs complete validation: chain, expiry,
	// hostname and BasicConstraints.
	ValidateFull ValidationMode = iota
	// ValidateNoHostname validates the chain but skips RFC 2818
	// hostname matching (the Amazon-family flaw in Table 7).
	ValidateNoHostname
	// ValidateNone accepts any certificate (seven devices in Table 7).
	ValidateNone
)

// String implements fmt.Stringer.
func (m ValidationMode) String() string {
	switch m {
	case ValidateFull:
		return "full"
	case ValidateNoHostname:
		return "no-hostname"
	case ValidateNone:
		return "none"
	default:
		return "unknown"
	}
}

// RevocationMode describes which revocation machinery a client exercises
// (Table 8).
type RevocationMode struct {
	// CheckCRL fetches the certificate's CRL distribution point.
	CheckCRL bool
	// CheckOCSP queries the certificate's OCSP responder.
	CheckOCSP bool
	// RequestStaple adds status_request to the ClientHello.
	RequestStaple bool
}

// Any reports whether any revocation mechanism is enabled.
func (r RevocationMode) Any() bool { return r.CheckCRL || r.CheckOCSP || r.RequestStaple }

// Dialer opens auxiliary connections (OCSP/CRL fetches) on behalf of a
// client. It matches netem.Network.Dial's shape.
type Dialer func(srcHost, dstHost string, dstPort int) (net.Conn, error)

// ClientConfig describes one TLS instance on a device: its library, its
// protocol configuration (the fingerprintable surface), its trust
// anchors, and its validation behaviour.
type ClientConfig struct {
	// Library selects the alert profile. Required.
	Library *LibraryProfile

	// MinVersion and MaxVersion bound the versions this instance will
	// negotiate. MaxVersion governs the ClientHello; MinVersion governs
	// which ServerHello versions are accepted.
	MinVersion ciphers.Version
	MaxVersion ciphers.Version

	// CipherSuites is the advertised suite list, in preference order.
	CipherSuites []ciphers.Suite

	// SignatureAlgorithms, SupportedGroups and ECPointFormats populate
	// the corresponding extensions when non-empty.
	SignatureAlgorithms []ciphers.SignatureAlgorithm
	SupportedGroups     []uint16
	ECPointFormats      []uint8

	// ALPNProtocols populates the ALPN extension when non-empty.
	ALPNProtocols []string

	// SendSessionTicket and SendRenegotiationInfo toggle the presence of
	// those (empty) extensions — fingerprint-relevant only.
	SendSessionTicket     bool
	SendRenegotiationInfo bool

	// SendSNI controls the server_name extension (virtually all devices
	// send it; some old stacks do not).
	SendSNI bool

	// Roots is the trusted root store consulted during validation.
	Roots *certs.Pool

	// Validation selects the certificate validation mode.
	Validation ValidationMode

	// DisableValidationAfter, when positive, models the Yi Camera
	// behaviour from §5.2: after this many consecutive validation
	// failures the instance stops validating entirely. The counter is
	// shared across handshakes through the instance state.
	DisableValidationAfter int

	// Revocation selects revocation checking behaviour.
	Revocation RevocationMode

	// PinnedLeaf, when non-empty, requires the server's leaf
	// certificate fingerprint to match exactly (certificate pinning,
	// the §6 mitigation: leaf pinning defeats every interception attack
	// in Table 2, including compromised-root-store attacks).
	PinnedLeaf string
	// PinnedRoot, when non-empty, requires the fingerprint of the root
	// the chain anchored at to match. Weaker than leaf pinning: it does
	// not protect against a compromised root key.
	PinnedRoot string

	// AuxDialer, when set, opens the auxiliary connections revocation
	// checking needs (OCSP/CRL fetches). SrcHost names this client on
	// those connections.
	AuxDialer Dialer
	SrcHost   string

	// Clock provides verification time. Defaults to clock.Real.
	Clock clock.Clock

	// Telemetry, when set, receives handshake outcome counters, the
	// per-library alert taxonomy, and a span tracing the handshake
	// phases. Nil disables instrumentation (a nil registry is a no-op,
	// so the field may also be left nil-safe by callers).
	Telemetry *telemetry.Registry

	// Trace is the connection attempt's causal trace span; chain
	// verification is recorded as a child. The driver sets it per
	// attempt; nil (the zero value) disables trace instrumentation.
	Trace *trace.Span

	// HandshakeTimeout bounds the wait for each server flight; an
	// expired timeout is classified as an incomplete handshake.
	// Defaults to 250ms.
	HandshakeTimeout time.Duration

	// instance state shared across handshakes (failure counter).
	state *instanceState
}

// instanceState carries mutable per-instance state across handshakes.
type instanceState struct {
	consecutiveFailures atomic.Int32
	validationDisabled  atomic.Bool
}

// State returns (creating on first use) the shared instance state, so
// that repeated handshakes from the same configured instance observe the
// failure counter.
func (c *ClientConfig) State() *instanceState {
	if c.state == nil {
		c.state = &instanceState{}
	}
	return c.state
}

// ResetState clears the shared failure counter (a fresh boot).
func (c *ClientConfig) ResetState() {
	if c.state != nil {
		c.state.consecutiveFailures.Store(0)
		c.state.validationDisabled.Store(false)
	}
}

// ValidationCurrentlyDisabled reports whether the give-up behaviour has
// tripped.
func (c *ClientConfig) ValidationCurrentlyDisabled() bool {
	return c.state != nil && c.state.validationDisabled.Load()
}

// clockOrReal returns the configured clock or the wall clock.
func (c *ClientConfig) clockOrReal() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real{}
}

func (c *ClientConfig) timeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 250 * time.Millisecond
}

// offersTLS13 reports whether the configuration can negotiate TLS 1.3.
func (c *ClientConfig) offersTLS13() bool { return c.MaxVersion >= ciphers.TLS13 }

// BuildClientHello constructs the ClientHello this configuration sends
// for serverName. The layout is deterministic given the configuration
// and seq, so fingerprints are stable across handshakes.
func (c *ClientConfig) BuildClientHello(serverName string, seq uint64) *wire.ClientHello {
	ch := &wire.ClientHello{
		LegacyVersion:      ciphers.MinVersion(c.MaxVersion, ciphers.TLS12),
		CipherSuites:       append([]ciphers.Suite(nil), c.CipherSuites...),
		CompressionMethods: []byte{0},
	}
	ch.Random = deterministicRandom(c.Library.Name, serverName, seq)

	if c.SendSNI && serverName != "" {
		ch.Extensions = append(ch.Extensions, wire.SNIExtension(serverName))
	}
	if c.Revocation.RequestStaple {
		ch.Extensions = append(ch.Extensions, wire.StatusRequestExtension())
	}
	if len(c.SupportedGroups) > 0 {
		ch.Extensions = append(ch.Extensions, wire.SupportedGroupsExtension(c.SupportedGroups))
	}
	if len(c.ECPointFormats) > 0 {
		ch.Extensions = append(ch.Extensions, wire.ECPointFormatsExtension(c.ECPointFormats))
	}
	if len(c.SignatureAlgorithms) > 0 {
		ch.Extensions = append(ch.Extensions, wire.SignatureAlgorithmsExtension(c.SignatureAlgorithms))
	}
	if len(c.ALPNProtocols) > 0 {
		ch.Extensions = append(ch.Extensions, wire.ALPNExtension(c.ALPNProtocols))
	}
	if c.SendSessionTicket {
		ch.Extensions = append(ch.Extensions, wire.SessionTicketExtension())
	}
	if c.offersTLS13() {
		var vs []ciphers.Version
		for v := c.MaxVersion; v >= c.MinVersion && v >= ciphers.SSL30; v-- {
			vs = append(vs, v)
		}
		ch.Extensions = append(ch.Extensions, wire.SupportedVersionsExtension(vs))
	}
	if c.SendRenegotiationInfo {
		ch.Extensions = append(ch.Extensions, wire.RenegotiationInfoExtension())
	}
	return ch
}

// deterministicRandom derives the 32-byte hello random from stable
// inputs, keeping every simulation run reproducible.
func deterministicRandom(parts ...interface{}) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h.Write([]byte(v))
			h.Write([]byte{0})
		case uint64:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], v)
			h.Write(b[:])
		}
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ServerBehavior selects how a server (or interceptor) treats incoming
// handshakes — the active-experiment knobs from §4.2 and §5.1.
type ServerBehavior int

const (
	// ServeNormal completes handshakes normally.
	ServeNormal ServerBehavior = iota
	// ServeIncompleteHandshake reads the ClientHello and never responds
	// (the paper's IncompleteHandshake downgrade trigger).
	ServeIncompleteHandshake
	// ServeReject reads the ClientHello and answers with a fatal
	// handshake_failure alert (the FailedHandshake trigger, without
	// presenting any certificate).
	ServeReject
)

// ServerConfig describes the server side of a handshake.
type ServerConfig struct {
	// Chain is the certificate chain to present, leaf first. The leaf's
	// key must be Key.
	Chain []*certs.Certificate
	// Key is the leaf private key (used to prove possession; the
	// simulation signs the transcript with it).
	Key certs.KeyPair

	// MinVersion and MaxVersion bound what the server negotiates.
	MinVersion ciphers.Version
	MaxVersion ciphers.Version

	// CipherSuites is the server preference order.
	CipherSuites []ciphers.Suite

	// ForceVersion, when non-zero, is used in the ServerHello regardless
	// of negotiation (the old-version probing experiment for Table 6).
	ForceVersion ciphers.Version

	// Behavior selects normal service or a failure mode.
	Behavior ServerBehavior

	// OCSPStaple indicates the server staples an OCSP response when the
	// client requests one (observable in passive data, Table 8).
	OCSPStaple bool

	// HandshakeTimeout bounds the wait for each client flight.
	// Defaults to 250ms.
	HandshakeTimeout time.Duration

	// Telemetry, when set, receives server-side handshake outcome
	// counters and spans. Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

func (c *ServerConfig) timeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 250 * time.Millisecond
}
