package tlssim

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/ciphers"
	"repro/internal/wire"
)

// ServerResult reports everything an interception proxy or cloud server
// learns from one connection attempt: the ClientHello (the fingerprint
// source), the outcome, and — central to the root-store probe — any
// alert the client sent before giving up.
type ServerResult struct {
	// ClientHello is the parsed hello, nil if none arrived.
	ClientHello *wire.ClientHello
	// Session is the established session; nil on failure.
	Session *Session
	// ClientAlert is the alert received from the client, if any.
	ClientAlert *wire.Alert
	// Err describes the failure; nil on success.
	Err *HandshakeError
	// NegotiatedVersion and NegotiatedSuite record the server's choices
	// (set even when the client subsequently aborts).
	NegotiatedVersion ciphers.Version
	NegotiatedSuite   ciphers.Suite
}

// Serve runs the server side of a TLS handshake over conn. It always
// returns a ServerResult; inspect Err for the outcome. Serve closes conn
// on failure but leaves successful sessions open for the caller.
func Serve(conn net.Conn, cfg *ServerConfig) *ServerResult {
	res := &ServerResult{}
	tel := cfg.Telemetry
	sp := tel.StartSpan("handshake.server")
	defer func() {
		tel.Counter("tlssim.server.handshakes").Inc()
		if res.Err != nil {
			conn.Close()
			class := res.Err.Class.String()
			tel.Counter("tlssim.server.failed").Inc()
			tel.Counter("tlssim.server.failed." + class).Inc()
			if res.ClientAlert != nil {
				tel.Counter("tlssim.server.alerts.from_client." + metricLabel(res.ClientAlert.Description.String())).Inc()
			}
			sp.End(class)
		} else {
			tel.Counter("tlssim.server.established").Inc()
			tel.Counter("tlssim.server.established.version." + metricLabel(res.NegotiatedVersion.String())).Inc()
			sp.End("established")
		}
	}()

	conn.SetDeadline(time.Now().Add(cfg.timeout()))
	mr := newMsgReader(conn)
	chMsg, herr := mr.expect(wire.TypeClientHello)
	if herr != nil {
		res.Err = herr
		return res
	}
	ch, err := wire.ParseClientHello(chMsg.Body)
	if err != nil {
		res.Err = failSendingAlert(conn, ciphers.TLS10, FailParameters, wire.AlertDecodeError, err)
		return res
	}
	res.ClientHello = ch
	sp.Phase("client_hello_received")

	var transcript bytes.Buffer
	transcript.Write(chMsg.Marshal())

	switch cfg.Behavior {
	case ServeIncompleteHandshake:
		// Never answer. When the transport supports deterministic
		// stalls (netem pipes), fail the client's pending read right
		// away — same timeout classification, no wall-clock wait.
		// Otherwise hold the connection until the client gives up.
		conn.SetDeadline(noDeadline)
		if s, ok := conn.(interface{ StallPeer() }); ok {
			s.StallPeer()
		}
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
		res.Err = failure(FailIncomplete, nil, errors.New("tlssim: configured to withhold ServerHello"))
		return res
	case ServeReject:
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertHandshakeFailure}
		wire.WriteAlert(conn, ciphers.TLS10, a)
		conn.Close()
		res.Err = failure(FailParameters, &a, errors.New("tlssim: configured to reject handshakes"))
		return res
	}

	// Version selection: highest client-offered version within our range,
	// unless ForceVersion overrides.
	version, ok := selectVersion(ch, cfg)
	if cfg.ForceVersion != 0 {
		version, ok = cfg.ForceVersion, true
	}
	if !ok {
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertProtocolVersion}
		wire.WriteAlert(conn, ciphers.TLS10, a)
		conn.Close()
		res.Err = failure(FailVersion, &a, fmt.Errorf("tlssim: no mutually supported version"))
		return res
	}
	res.NegotiatedVersion = version

	suite, ok := ciphers.SelectSuite(ch.CipherSuites, cfg.CipherSuites, version)
	if !ok {
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertHandshakeFailure}
		wire.WriteAlert(conn, ciphers.TLS10, a)
		conn.Close()
		res.Err = failure(FailParameters, &a, fmt.Errorf("tlssim: no mutually supported ciphersuite at %s", version))
		return res
	}
	res.NegotiatedSuite = suite

	recordVersion := ciphers.MinVersion(version, ciphers.TLS12)
	sh := &wire.ServerHello{
		Version:     version,
		CipherSuite: suite,
	}
	sh.Random = deterministicRandom("server", string(ch.Random[:]), uint64(suite))
	if cfg.OCSPStaple && ch.RequestsOCSPStaple() {
		sh.Extensions = append(sh.Extensions, wire.Extension{Type: wire.ExtStatusRequest})
	}
	shMsg := sh.Message()
	transcript.Write(shMsg.Marshal())
	if err := wire.WriteHandshake(conn, recordVersion, shMsg); err != nil {
		res.Err = failure(FailIO, nil, err)
		return res
	}

	certMsg := (&wire.CertificateMsg{Chain: cfg.Chain}).Message()
	transcript.Write(certMsg.Marshal())
	if err := wire.WriteHandshake(conn, recordVersion, certMsg); err != nil {
		res.Err = failure(FailIO, nil, err)
		return res
	}

	// ServerHelloDone carries the possession proof: an Ed25519 signature
	// over the transcript so far, by the leaf key.
	proof := ed25519.Sign(cfg.Key.Key, transcriptProofInput(transcript.Bytes()))
	doneMsg := wire.Handshake{Type: wire.TypeServerHelloDone, Body: proof}
	transcript.Write(doneMsg.Marshal())
	if err := wire.WriteHandshake(conn, recordVersion, doneMsg); err != nil {
		res.Err = failure(FailIO, nil, err)
		return res
	}
	sp.Phase("server_flight_sent")

	// Client flight: ClientKeyExchange, (CCS), Finished — or an alert if
	// the client rejected our certificate.
	conn.SetDeadline(time.Now().Add(cfg.timeout()))
	ckeMsg, herr := mr.expect(wire.TypeClientKeyExchange)
	if herr != nil {
		res.ClientAlert = mr.LastAlert
		res.Err = herr
		return res
	}
	transcript.Write(ckeMsg.Marshal())
	finMsg, herr := mr.expect(wire.TypeFinished)
	if herr != nil {
		res.ClientAlert = mr.LastAlert
		res.Err = herr
		return res
	}
	wantClient := wire.ComputeVerifyData(transcript.Bytes(), "client")
	if !bytes.Equal(finMsg.Body, wantClient) {
		res.Err = failSendingAlert(conn, recordVersion, FailParameters, wire.AlertDecryptError,
			errors.New("tlssim: client Finished verify data mismatch"))
		return res
	}
	transcript.Write(finMsg.Marshal())
	sp.Phase("client_finished_verified")

	// Server CCS + Finished.
	if err := wire.WriteRecord(conn, wire.Record{Type: wire.TypeChangeCipherSpec, Version: recordVersion, Payload: []byte{1}}); err != nil {
		res.Err = failure(FailIO, nil, err)
		return res
	}
	sfin := wire.FinishedMsg{VerifyData: wire.ComputeVerifyData(transcript.Bytes(), "server")}
	if err := wire.WriteHandshake(conn, recordVersion, sfin.Message()); err != nil {
		res.Err = failure(FailIO, nil, err)
		return res
	}

	conn.SetDeadline(noDeadline)
	secret := masterSecret(ch.Random, sh.Random, suite)
	res.Session = &Session{
		Conn:        newSecureConn(conn, version, secret, false),
		Version:     version,
		Suite:       suite,
		Hello:       ch,
		ServerHello: sh,
		StapledOCSP: sh.HasStaple(),
	}
	return res
}

// selectVersion picks the highest client-offered version within the
// server's configured range.
func selectVersion(ch *wire.ClientHello, cfg *ServerConfig) (ciphers.Version, bool) {
	best := ciphers.Version(0)
	for _, v := range ch.SupportedVersions() {
		if v >= cfg.MinVersion && v <= cfg.MaxVersion && v > best && v.Known() {
			best = v
		}
	}
	return best, best != 0
}
