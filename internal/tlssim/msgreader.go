package tlssim

import (
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/ciphers"
	"repro/internal/wire"
)

// msgReader pulls handshake messages off the record layer, handling
// coalesced messages, interleaved ChangeCipherSpec records, and alert
// records. It classifies transport failures the way the paper's
// analyses need (timeout vs. close vs. alert).
type msgReader struct {
	conn    net.Conn
	pending []byte
	// LastAlert records the most recent alert read, fatal or warning —
	// the probe's observable.
	LastAlert *wire.Alert
}

func newMsgReader(conn net.Conn) *msgReader { return &msgReader{conn: conn} }

// next returns the next handshake message. A fatal alert, clean close,
// or timeout is converted to the corresponding *HandshakeError.
func (r *msgReader) next() (wire.Handshake, *HandshakeError) {
	for {
		if len(r.pending) > 0 {
			msg, rest, err := wire.ParseHandshake(r.pending)
			if err != nil {
				return wire.Handshake{}, failure(FailParameters, nil, err)
			}
			r.pending = rest
			return msg, nil
		}
		rec, err := wire.ReadRecord(r.conn)
		if err != nil {
			return wire.Handshake{}, classifyReadError(err)
		}
		switch rec.Type {
		case wire.TypeHandshake:
			r.pending = rec.Payload
		case wire.TypeChangeCipherSpec:
			// Skip: the simulation treats CCS as decorative.
		case wire.TypeAlert:
			a, perr := wire.ParseAlert(rec.Payload)
			if perr != nil {
				return wire.Handshake{}, failure(FailParameters, nil, perr)
			}
			r.LastAlert = &a
			if a.Level == wire.LevelFatal || a.Description == wire.AlertCloseNotify {
				return wire.Handshake{}, failure(FailAlertReceived, &a, a)
			}
			// Warning alerts are skipped.
		default:
			return wire.Handshake{}, failure(FailParameters, nil,
				fmt.Errorf("tlssim: unexpected %s record during handshake", rec.Type))
		}
	}
}

// expect returns the next handshake message, requiring the given type.
func (r *msgReader) expect(t wire.HandshakeType) (wire.Handshake, *HandshakeError) {
	msg, herr := r.next()
	if herr != nil {
		return wire.Handshake{}, herr
	}
	if msg.Type != t {
		return wire.Handshake{}, failure(FailParameters, nil,
			fmt.Errorf("tlssim: expected %s, got %s", t, msg.Type))
	}
	return msg, nil
}

// classifyReadError buckets a transport read error.
func classifyReadError(err error) *HandshakeError {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return failure(FailIncomplete, nil, err)
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed):
		return failure(FailPeerClosed, nil, err)
	case errors.Is(err, io.ErrUnexpectedEOF):
		return failure(FailPeerClosed, nil, err)
	default:
		return failure(FailIO, nil, err)
	}
}

// failSendingAlert sends a fatal alert, closes the connection and
// returns the corresponding *HandshakeError.
func failSendingAlert(conn net.Conn, v ciphers.Version, class FailureClass, desc wire.AlertDescription, err error) *HandshakeError {
	a := wire.Alert{Level: wire.LevelFatal, Description: desc}
	wire.WriteAlert(conn, v, a)
	conn.Close()
	return failure(class, &a, err)
}
