// Package tlssim implements the TLS handshake engines driving the IoTLS
// simulation: a configurable client (modelling an IoT device's TLS
// instance) and server (modelling cloud endpoints and the interception
// proxy), running the wire format from internal/wire over real net.Conns.
//
// The engines are behaviourally faithful to the properties the paper
// measures: version and ciphersuite negotiation, certificate validation
// policies (full, no-validation, no-hostname, give-up-after-failures),
// downgrade-on-failure fallback, OCSP/CRL revocation checking, and — the
// core of the paper's novel probing technique — per-library TLS Alert
// behaviour on certificate validation failures (Table 4).
package tlssim

import (
	"errors"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/wire"
)

// LibraryProfile captures how a TLS implementation reacts to the two
// certificate-failure classes the root-store probe distinguishes, plus
// general alerting behaviour. The paper validated six libraries
// (Table 4); only profiles whose two alerts differ are amenable to
// root-store exploration.
type LibraryProfile struct {
	// Name identifies the library, e.g. "openssl-1.1.1".
	Name string

	// SendsAlerts is false for libraries that close the connection
	// without any alert on validation failure (GnuTLS, SecureTransport).
	SendsAlerts bool

	// UnknownCAAlert is sent when chain building finds no trusted root
	// ("Response for unknown CA" in Table 4).
	UnknownCAAlert wire.AlertDescription

	// BadSignatureAlert is sent when a trusted root matches by name but
	// the signature check fails ("Response for known CA with invalid
	// signature" in Table 4).
	BadSignatureAlert wire.AlertDescription

	// HostnameAlert is sent on hostname mismatch.
	HostnameAlert wire.AlertDescription

	// ExpiredAlert is sent for expired certificates.
	ExpiredAlert wire.AlertDescription

	// BasicConstraintsAlert is sent for BasicConstraints violations.
	BasicConstraintsAlert wire.AlertDescription

	// TLS13AlertsOptional models the §6 limitation: RFC 8446 made
	// failure alerts optional, so stacks built on it may stay silent on
	// TLS 1.3 connections while still alerting on 1.2 — breaking the
	// root-store side channel exactly when devices modernise.
	TLS13AlertsOptional bool
}

// Amenable reports whether the root-store probing technique can work
// against this library: it must send alerts at all, and the unknown-CA
// and bad-signature alerts must differ (§4.2).
func (p *LibraryProfile) Amenable() bool {
	return p.SendsAlerts && p.UnknownCAAlert != p.BadSignatureAlert
}

// The six library profiles from Table 4 of the paper.
var (
	// ProfileMbedTLS: Bad Certificate / Unknown CA — amenable.
	ProfileMbedTLS = &LibraryProfile{
		Name:                  "mbedtls-2.21.0",
		SendsAlerts:           true,
		UnknownCAAlert:        wire.AlertUnknownCA,
		BadSignatureAlert:     wire.AlertBadCertificate,
		HostnameAlert:         wire.AlertBadCertificate,
		ExpiredAlert:          wire.AlertCertificateExpired,
		BasicConstraintsAlert: wire.AlertBadCertificate,
	}

	// ProfileOpenSSL: Decrypt Error / Unknown CA — amenable.
	ProfileOpenSSL = &LibraryProfile{
		Name:                  "openssl-1.1.1i",
		SendsAlerts:           true,
		UnknownCAAlert:        wire.AlertUnknownCA,
		BadSignatureAlert:     wire.AlertDecryptError,
		HostnameAlert:         wire.AlertBadCertificate,
		ExpiredAlert:          wire.AlertCertificateExpired,
		BasicConstraintsAlert: wire.AlertUnknownCA,
	}

	// ProfileWolfSSL: Bad Certificate / Bad Certificate — not amenable.
	ProfileWolfSSL = &LibraryProfile{
		Name:                  "wolfssl-4.1.0",
		SendsAlerts:           true,
		UnknownCAAlert:        wire.AlertBadCertificate,
		BadSignatureAlert:     wire.AlertBadCertificate,
		HostnameAlert:         wire.AlertBadCertificate,
		ExpiredAlert:          wire.AlertBadCertificate,
		BasicConstraintsAlert: wire.AlertBadCertificate,
	}

	// ProfileJavaJSSE: Certificate Unknown / Certificate Unknown — not
	// amenable.
	ProfileJavaJSSE = &LibraryProfile{
		Name:                  "oracle-java-18",
		SendsAlerts:           true,
		UnknownCAAlert:        wire.AlertCertificateUnknown,
		BadSignatureAlert:     wire.AlertCertificateUnknown,
		HostnameAlert:         wire.AlertCertificateUnknown,
		ExpiredAlert:          wire.AlertCertificateUnknown,
		BasicConstraintsAlert: wire.AlertCertificateUnknown,
	}

	// ProfileGnuTLS: no alerts — not amenable.
	ProfileGnuTLS = &LibraryProfile{
		Name:        "gnutls-3.6.15",
		SendsAlerts: false,
	}

	// ProfileSecureTransport: no alerts — not amenable.
	ProfileSecureTransport = &LibraryProfile{
		Name:        "securetransport-macos-11.3",
		SendsAlerts: false,
	}
)

// Profiles lists all six library profiles in Table 4's row order.
var Profiles = []*LibraryProfile{
	ProfileMbedTLS,
	ProfileOpenSSL,
	ProfileJavaJSSE,
	ProfileWolfSSL,
	ProfileGnuTLS,
	ProfileSecureTransport,
}

// AlertForValidationError maps a certificate validation error to the
// alert this library sends (ok=false when the library sends none).
func (p *LibraryProfile) AlertForValidationError(err error) (wire.Alert, bool) {
	return p.alertForValidationError(err, 0)
}

// AlertForValidationErrorAt is the version-aware variant: a library
// with TLS13AlertsOptional stays silent when the failing connection
// negotiated TLS 1.3.
func (p *LibraryProfile) AlertForValidationErrorAt(err error, v ciphers.Version) (wire.Alert, bool) {
	return p.alertForValidationError(err, v)
}

func (p *LibraryProfile) alertForValidationError(err error, v ciphers.Version) (wire.Alert, bool) {
	if !p.SendsAlerts {
		return wire.Alert{}, false
	}
	if p.TLS13AlertsOptional && v >= ciphers.TLS13 {
		return wire.Alert{}, false
	}
	desc := p.BadSignatureAlert
	var uae certs.UnknownAuthorityError
	var he certs.HostnameError
	var ee certs.ExpiredError
	var bce certs.BasicConstraintsError
	switch {
	case errors.As(err, &uae):
		desc = p.UnknownCAAlert
	case errors.Is(err, certs.ErrSignature):
		desc = p.BadSignatureAlert
	case errors.As(err, &he):
		desc = p.HostnameAlert
	case errors.As(err, &ee):
		desc = p.ExpiredAlert
	case errors.As(err, &bce):
		desc = p.BasicConstraintsAlert
	}
	return wire.Alert{Level: wire.LevelFatal, Description: desc}, true
}
