package tlssim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ciphers"
	"repro/internal/wire"
)

func securePair(t *testing.T) (*SecureConn, *SecureConn) {
	t.Helper()
	var cr, sr [32]byte
	cr[0], sr[0] = 1, 2
	secret := masterSecret(cr, sr, ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256)
	cc, sc := net.Pipe()
	return newSecureConn(cc, ciphers.TLS12, secret, true),
		newSecureConn(sc, ciphers.TLS12, secret, false)
}

func TestSecureConnRoundTrip(t *testing.T) {
	client, server := securePair(t)
	go func() {
		client.Write([]byte("hello over keystream"))
	}()
	buf := make([]byte, 20)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello over keystream" {
		t.Fatalf("got %q", buf)
	}
	// And the reverse direction.
	go func() {
		server.Write([]byte("reply"))
	}()
	buf = make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "reply" {
		t.Fatalf("got %q", buf)
	}
	if client.Version() != ciphers.TLS12 {
		t.Fatal("version lost")
	}
}

func TestSecureConnLargeTransfer(t *testing.T) {
	// Payloads larger than one record must fragment and reassemble.
	client, server := securePair(t)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 3000) // 48000 bytes > 16384
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n, err := client.Write(payload)
		if err != nil || n != len(payload) {
			t.Errorf("write = %d, %v", n, err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted")
	}
}

func TestSecureConnPartialReads(t *testing.T) {
	client, server := securePair(t)
	go client.Write([]byte("abcdef"))
	one := make([]byte, 1)
	var got []byte
	for len(got) < 6 {
		n, err := server.Read(one)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, one[:n]...)
	}
	if string(got) != "abcdef" {
		t.Fatalf("got %q", got)
	}
}

func TestSecureConnSurfacesAlert(t *testing.T) {
	client, server := securePair(t)
	go func() {
		wire.WriteAlert(client.Conn, ciphers.TLS12, wire.Alert{Level: wire.LevelFatal, Description: wire.AlertInternalError})
	}()
	buf := make([]byte, 8)
	_, err := server.Read(buf)
	var a wire.Alert
	if !errorsAs(err, &a) || a.Description != wire.AlertInternalError {
		t.Fatalf("err = %v, want internal_error alert", err)
	}
}

func errorsAs(err error, target *wire.Alert) bool {
	a, ok := err.(wire.Alert)
	if ok {
		*target = a
	}
	return ok
}

func TestKeystreamDeterministicAndDirectional(t *testing.T) {
	secret := []byte("shared secret")
	a1 := newKeystream(secret, "client->server")
	a2 := newKeystream(secret, "client->server")
	b := newKeystream(secret, "server->client")

	p1 := []byte("same plaintext")
	p2 := append([]byte(nil), p1...)
	p3 := append([]byte(nil), p1...)
	a1.xor(p1)
	a2.xor(p2)
	b.xor(p3)
	if !bytes.Equal(p1, p2) {
		t.Fatal("same keystream produced different ciphertexts")
	}
	if bytes.Equal(p1, p3) {
		t.Fatal("directions share a keystream")
	}
	// Applying the same stream again from a fresh instance decrypts.
	dec := newKeystream(secret, "client->server")
	dec.xor(p1)
	if string(p1) != "same plaintext" {
		t.Fatalf("decrypt failed: %q", p1)
	}
}

// Property: xor with a same-state keystream is an involution for any
// payload, any chunking.
func TestKeystreamInvolutionProperty(t *testing.T) {
	f := func(payload []byte, split uint8) bool {
		enc := newKeystream([]byte("k"), "dir")
		dec := newKeystream([]byte("k"), "dir")
		buf := append([]byte(nil), payload...)
		// Encrypt in two chunks at an arbitrary split point.
		cut := 0
		if len(buf) > 0 {
			cut = int(split) % len(buf)
		}
		enc.xor(buf[:cut])
		enc.xor(buf[cut:])
		dec.xor(buf)
		return bytes.Equal(buf, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMasterSecretInputsMatter(t *testing.T) {
	var cr, sr [32]byte
	base := masterSecret(cr, sr, ciphers.TLS_RSA_WITH_AES_128_CBC_SHA)
	cr[5] = 1
	if bytes.Equal(base, masterSecret(cr, sr, ciphers.TLS_RSA_WITH_AES_128_CBC_SHA)) {
		t.Fatal("client random ignored")
	}
	cr[5] = 0
	sr[9] = 1
	if bytes.Equal(base, masterSecret(cr, sr, ciphers.TLS_RSA_WITH_AES_128_CBC_SHA)) {
		t.Fatal("server random ignored")
	}
	sr[9] = 0
	if bytes.Equal(base, masterSecret(cr, sr, ciphers.TLS_RSA_WITH_RC4_128_SHA)) {
		t.Fatal("suite ignored")
	}
}
