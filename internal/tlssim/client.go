package tlssim

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/wire"
)

// Session is an established TLS session.
type Session struct {
	// Conn carries protected application data.
	Conn *SecureConn
	// Version and Suite record the negotiated parameters.
	Version ciphers.Version
	Suite   ciphers.Suite
	// PeerChain is the certificate chain the peer presented (client side
	// only).
	PeerChain []*certs.Certificate
	// Hello is the ClientHello sent (client) or received (server).
	Hello *wire.ClientHello
	// ServerHello is the server's hello as sent or received.
	ServerHello *wire.ServerHello
	// ValidationBypassed reports that the client accepted the
	// certificate without validating (mode none, or the give-up
	// behaviour having tripped).
	ValidationBypassed bool
	// StapledOCSP reports whether the server stapled an OCSP response.
	StapledOCSP bool
}

// Close closes the underlying connection.
func (s *Session) Close() error { return s.Conn.Close() }

// Client runs the client side of a TLS handshake over conn, as the
// instance described by cfg, connecting to serverName. seq disambiguates
// hello randoms across connections from the same instance.
//
// On failure the returned error is a *HandshakeError whose Class and
// Alert describe exactly what an on-path observer would see — which is
// what the paper's probing technique measures.
func Client(conn net.Conn, cfg *ClientConfig, serverName string, seq uint64) (sess *Session, err error) {
	tel := cfg.Telemetry
	sp := tel.StartSpan("handshake.client")
	defer func() {
		// Every failure path must release the transport, or a server
		// configured to withhold its flight would block forever.
		if err != nil {
			conn.Close()
			finishClientFailure(tel, cfg, sp, err)
		} else {
			conn.SetDeadline(noDeadline)
			finishClientSuccess(tel, cfg, sp, sess)
		}
	}()
	if cfg.Library == nil {
		return nil, failure(FailParameters, nil, errors.New("tlssim: client requires a library profile"))
	}

	ch := cfg.BuildClientHello(serverName, seq)
	var transcript bytes.Buffer
	chMsg := ch.Message()
	transcript.Write(chMsg.Marshal())

	recordVersion := ciphers.MinVersion(cfg.MaxVersion, ciphers.TLS12)
	// Deadline covers the send too: a black-holed connection (nothing
	// ever reads) must surface as an incomplete handshake, not a hang.
	conn.SetDeadline(time.Now().Add(cfg.timeout()))
	if err := wire.WriteHandshake(conn, recordVersion, chMsg); err != nil {
		return nil, classifyReadError(err)
	}
	sp.Phase("client_hello_sent")

	// Read the server flight: ServerHello, Certificate, ServerHelloDone.
	// Deadlines use wall time: the handshake itself runs in real time
	// even when the testbed clock is virtual.
	conn.SetDeadline(time.Now().Add(cfg.timeout()))
	mr := newMsgReader(conn)

	shMsg, herr := mr.expect(wire.TypeServerHello)
	if herr != nil {
		return nil, herr
	}
	sh, err := wire.ParseServerHello(shMsg.Body)
	if err != nil {
		return nil, failSendingAlert(conn, recordVersion, FailParameters, wire.AlertDecodeError, err)
	}
	transcript.Write(shMsg.Marshal())

	// Read the rest of the server flight before reacting: real stacks
	// process the full flight (TCP buffers it), and alerting mid-flight
	// would deadlock an unbuffered in-memory transport.
	certMsg, herr := mr.expect(wire.TypeCertificate)
	if herr != nil {
		return nil, herr
	}
	doneMsg, herr := mr.expect(wire.TypeServerHelloDone)
	if herr != nil {
		return nil, herr
	}
	sp.Phase("server_flight_received")

	// Version acceptance: the server's choice must be one we offered.
	if !acceptableVersion(cfg, ch, sh.Version) {
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertProtocolVersion}
		wire.WriteAlert(conn, recordVersion, a)
		return nil, failure(FailVersion, &a, fmt.Errorf("tlssim: server chose unacceptable version %s", sh.Version))
	}
	// Suite acceptance: must be one we offered and usable at the version.
	if !suiteOffered(ch.CipherSuites, sh.CipherSuite) || !sh.CipherSuite.UsableAt(sh.Version) {
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertIllegalParameter}
		wire.WriteAlert(conn, recordVersion, a)
		return nil, failure(FailParameters, &a, fmt.Errorf("tlssim: server chose unacceptable suite %s", sh.CipherSuite))
	}

	cm, err := wire.ParseCertificateMsg(certMsg.Body)
	if err != nil {
		return nil, failSendingAlert(conn, recordVersion, FailParameters, wire.AlertDecodeError, err)
	}
	transcript.Write(certMsg.Marshal())

	// Certificate validation, per the instance's policy.
	state := cfg.State()
	bypass := cfg.Validation == ValidateNone || state.validationDisabled.Load()
	stapled := sh.HasStaple()
	// Leaf pinning binds even instances that skip CA validation — the
	// common IoT pattern of pinning *instead of* PKI validation.
	if cfg.PinnedLeaf != "" && len(cm.Chain) > 0 && cm.Chain[0].Fingerprint() != cfg.PinnedLeaf {
		verr := PinMismatchError{Kind: "leaf", Got: cm.Chain[0].Fingerprint()}
		var sent *wire.Alert
		if a, ok := cfg.Library.AlertForValidationErrorAt(verr, sh.Version); ok {
			wire.WriteAlert(conn, recordVersion, a)
			sent = &a
		}
		return nil, failure(FailCertificate, sent, verr)
	}
	if !bypass {
		vsp := cfg.Trace.Child("chain_verify", serverName)
		verr := validateServerCert(cfg, cm.Chain, serverName, doneMsg.Body, transcript.Bytes(), stapled)
		if verr != nil {
			vsp.End("rejected")
		} else {
			vsp.End("ok")
		}
		if verr != nil {
			sp.Phase("certificate_rejected")
			n := state.consecutiveFailures.Add(1)
			if cfg.DisableValidationAfter > 0 && int(n) >= cfg.DisableValidationAfter {
				state.validationDisabled.Store(true)
			}
			var sent *wire.Alert
			if a, ok := cfg.Library.AlertForValidationErrorAt(verr, sh.Version); ok {
				wire.WriteAlert(conn, recordVersion, a)
				sent = &a
			}
			conn.Close()
			return nil, failure(FailCertificate, sent, verr)
		}
		state.consecutiveFailures.Store(0)
		sp.Phase("certificate_validated")
	}
	transcript.Write(doneMsg.Marshal())

	// Optional revocation checking (soft-fail, like real clients).
	if len(cm.Chain) > 0 && cfg.AuxDialer != nil {
		checkRevocation(cfg, cm.Chain[0])
	}

	// Client flight: ClientKeyExchange, ChangeCipherSpec, Finished.
	cke := wire.ClientKeyExchange(keyExchangeMaterial(ch.Random, sh.Random))
	transcript.Write(cke.Marshal())
	if err := wire.WriteHandshake(conn, recordVersion, cke); err != nil {
		return nil, failure(FailIO, nil, err)
	}
	if err := wire.WriteRecord(conn, wire.Record{Type: wire.TypeChangeCipherSpec, Version: recordVersion, Payload: []byte{1}}); err != nil {
		return nil, failure(FailIO, nil, err)
	}
	fin := wire.FinishedMsg{VerifyData: wire.ComputeVerifyData(transcript.Bytes(), "client")}
	finMsg := fin.Message()
	transcript.Write(finMsg.Marshal())
	if err := wire.WriteHandshake(conn, recordVersion, finMsg); err != nil {
		return nil, failure(FailIO, nil, err)
	}
	sp.Phase("client_flight_sent")

	// Server Finished.
	sfin, herr := mr.expect(wire.TypeFinished)
	if herr != nil {
		return nil, herr
	}
	want := wire.ComputeVerifyData(transcript.Bytes(), "server")
	if !bytes.Equal(sfin.Body, want) {
		a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertDecryptError}
		wire.WriteAlert(conn, recordVersion, a)
		conn.Close()
		return nil, failure(FailParameters, &a, errors.New("tlssim: server Finished verify data mismatch"))
	}

	conn.SetDeadline(noDeadline)
	secret := masterSecret(ch.Random, sh.Random, sh.CipherSuite)
	return &Session{
		Conn:               newSecureConn(conn, sh.Version, secret, true),
		Version:            sh.Version,
		Suite:              sh.CipherSuite,
		PeerChain:          cm.Chain,
		Hello:              ch,
		ServerHello:        sh,
		ValidationBypassed: bypass,
		StapledOCSP:        stapled,
	}, nil
}

// acceptableVersion reports whether the client may proceed at v.
func acceptableVersion(cfg *ClientConfig, ch *wire.ClientHello, v ciphers.Version) bool {
	if v < cfg.MinVersion || v > cfg.MaxVersion || !v.Known() {
		return false
	}
	for _, offered := range ch.SupportedVersions() {
		if offered == v {
			return true
		}
	}
	return false
}

func suiteOffered(offered []ciphers.Suite, s ciphers.Suite) bool {
	for _, o := range offered {
		if o == s {
			return true
		}
	}
	return false
}

// PinMismatchError reports a certificate-pinning failure.
type PinMismatchError struct {
	// Kind is "leaf" or "root".
	Kind string
	// Got is the presented fingerprint.
	Got string
}

// Error implements error.
func (e PinMismatchError) Error() string {
	return fmt.Sprintf("tlssim: pinned %s certificate mismatch (got %s)", e.Kind, e.Got)
}

// validateServerCert applies the configured validation mode and verifies
// the server's possession proof (the transcript signature carried in
// ServerHelloDone).
func validateServerCert(cfg *ClientConfig, chain []*certs.Certificate, serverName string, proof, transcript []byte, stapled bool) error {
	if len(chain) == 0 {
		return errors.New("tlssim: server presented no certificate")
	}
	// Leaf pinning happens before (and regardless of) chain validation:
	// a pinned client rejects any substituted certificate even when the
	// chain would otherwise verify (e.g. via a compromised root).
	if cfg.PinnedLeaf != "" && chain[0].Fingerprint() != cfg.PinnedLeaf {
		return PinMismatchError{Kind: "leaf", Got: chain[0].Fingerprint()}
	}
	opts := certs.VerifyOptions{
		Roots:        cfg.Roots,
		Hostname:     serverName,
		At:           cfg.clockOrReal().Now(),
		SkipHostname: cfg.Validation == ValidateNoHostname,
	}
	path, err := certs.Verify(chain, opts)
	if err != nil {
		return err
	}
	if cfg.PinnedRoot != "" {
		anchor := path[len(path)-1]
		if anchor.Fingerprint() != cfg.PinnedRoot {
			return PinMismatchError{Kind: "root", Got: anchor.Fingerprint()}
		}
	}
	// Possession proof: the presenter must hold the leaf private key.
	if len(chain[0].PublicKey) != ed25519.PublicKeySize ||
		!ed25519.Verify(chain[0].PublicKey, transcriptProofInput(transcript), proof) {
		return certs.ErrSignature
	}
	// RFC 7633 must-staple: hard-fail when we asked for a staple, the
	// certificate demands one, and none arrived.
	if chain[0].MustStaple && cfg.Revocation.RequestStaple && !stapled {
		return fmt.Errorf("tlssim: certificate requires stapled OCSP response, none provided")
	}
	return nil
}

// checkRevocation performs best-effort OCSP/CRL lookups, generating the
// observable side traffic Table 8 is derived from.
func checkRevocation(cfg *ClientConfig, leaf *certs.Certificate) {
	if cfg.Revocation.CheckOCSP && leaf.OCSPServer != "" {
		if conn, err := cfg.AuxDialer(cfg.SrcHost, leaf.OCSPServer, 80); err == nil {
			fmt.Fprintf(conn, "OCSP-CHECK serial=%d\n", leaf.SerialNumber)
			readLine(conn)
			conn.Close()
		}
	}
	if cfg.Revocation.CheckCRL && leaf.CRLServer != "" {
		if conn, err := cfg.AuxDialer(cfg.SrcHost, leaf.CRLServer, 80); err == nil {
			fmt.Fprintf(conn, "CRL-FETCH issuer=%s\n", leaf.Issuer)
			readLine(conn)
			conn.Close()
		}
	}
}

func readLine(r io.Reader) string {
	var out []byte
	buf := make([]byte, 1)
	for len(out) < 256 {
		n, err := r.Read(buf)
		if n > 0 {
			if buf[0] == '\n' {
				break
			}
			out = append(out, buf[0])
		}
		if err != nil {
			break
		}
	}
	return string(out)
}

// keyExchangeMaterial derives deterministic opaque CKE bytes.
func keyExchangeMaterial(cr, sr [32]byte) []byte {
	out := make([]byte, 32)
	for i := range out {
		out[i] = cr[i] ^ sr[i]
	}
	return out
}

// transcriptProofInput prefixes the transcript for the possession proof.
func transcriptProofInput(transcript []byte) []byte {
	return append([]byte("iotls server proof:"), transcript...)
}

// noDeadline clears a connection deadline.
var noDeadline time.Time
