package tlssim

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// These tests pin down how the client classifies the wire damage the
// fault-injection subsystem manufactures (internal/fault via netem):
// truncated and corrupted server flights must fail with a stable,
// deterministic failure class — the driver's retry policies key off it.

// truncatingConn cuts the server's first write short and closes, like
// netem's truncate fault.
type truncatingConn struct {
	net.Conn
	cut int

	mu    sync.Mutex
	fired bool
}

func (c *truncatingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	fired := c.fired
	c.fired = true
	c.mu.Unlock()
	if fired {
		return 0, net.ErrClosed
	}
	cut := c.cut
	if cut > len(p) {
		cut = len(p)
	}
	n, err := c.Conn.Write(p[:cut])
	c.Conn.Close()
	if err != nil {
		return n, err
	}
	return n, net.ErrClosed
}

// corruptingConn flips one byte of the server's fourth write (the
// Certificate message payload), like netem's corrupt fault.
type corruptingConn struct {
	net.Conn
	offset int

	mu     sync.Mutex
	writes int
}

func (c *corruptingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	w := c.writes
	c.mu.Unlock()
	if w != 4 || len(p) == 0 {
		return c.Conn.Write(p)
	}
	q := make([]byte, len(p))
	copy(q, p)
	q[c.offset%len(p)] ^= 0x5a
	return c.Conn.Write(q)
}

func TestClientClassifiesTruncatedFlightDeterministically(t *testing.T) {
	root, server := testPKI(t, "h.com")
	classes := map[FailureClass]int{}
	for run := 0; run < 5; run++ {
		cc, sc := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			Serve(&truncatingConn{Conn: sc, cut: 3}, defaultServer(root, server))
		}()
		cfg := defaultClient(root)
		cfg.HandshakeTimeout = 500 * time.Millisecond
		_, err := Client(cc, cfg, "h.com", 1)
		<-done
		var he *HandshakeError
		if !errors.As(err, &he) {
			t.Fatalf("run %d: err = %v, want HandshakeError", run, err)
		}
		classes[he.Class]++
	}
	if len(classes) != 1 {
		t.Fatalf("truncated flight produced multiple failure classes: %v", classes)
	}
	for class := range classes {
		if class != FailPeerClosed && class != FailIncomplete && class != FailIO {
			t.Fatalf("truncated flight classified %v, want a connection-failure class", class)
		}
	}
}

func TestClientClassifiesCorruptedCertificateDeterministically(t *testing.T) {
	root, server := testPKI(t, "h.com")
	for _, offset := range []int{0, 7, 63} {
		classes := map[FailureClass]int{}
		for run := 0; run < 3; run++ {
			cc, sc := net.Pipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				Serve(&corruptingConn{Conn: sc, offset: offset}, defaultServer(root, server))
			}()
			cfg := defaultClient(root)
			cfg.HandshakeTimeout = 500 * time.Millisecond
			sess, err := Client(cc, cfg, "h.com", 1)
			<-done
			if err == nil {
				sess.Close()
				t.Fatalf("offset %d run %d: corrupted Certificate message established", offset, run)
			}
			var he *HandshakeError
			if !errors.As(err, &he) {
				t.Fatalf("offset %d run %d: err = %v, want HandshakeError", offset, run, err)
			}
			classes[he.Class]++
		}
		if len(classes) != 1 {
			t.Fatalf("offset %d: corruption produced multiple failure classes: %v", offset, classes)
		}
	}
}
