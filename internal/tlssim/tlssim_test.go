package tlssim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/wire"
)

var (
	tNotBefore = time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	tNotAfter  = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	tNow       = time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)
)

// testPKI builds a root CA and a server certificate for host.
func testPKI(t *testing.T, host string) (root certs.KeyPair, server certs.KeyPair) {
	t.Helper()
	root = certs.NewRootCA(certs.Name{CommonName: "Sim Root CA", Organization: "Sim", Country: "US"}, 1, tNotBefore, tNotAfter, "sim-root")
	server = root.Issue(certs.Template{
		SerialNumber: 10,
		Subject:      certs.Name{CommonName: host, Organization: "Cloud", Country: "US"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{host},
	}, "sim-server-"+host)
	return root, server
}

func defaultClient(root certs.KeyPair) *ClientConfig {
	pool := certs.NewPool()
	pool.Add(root.Cert)
	return &ClientConfig{
		Library:    ProfileOpenSSL,
		MinVersion: ciphers.TLS10,
		MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		},
		SignatureAlgorithms: []ciphers.SignatureAlgorithm{ciphers.ED25519},
		SupportedGroups:     []uint16{29, 23},
		ECPointFormats:      []uint8{0},
		SendSNI:             true,
		Roots:               pool,
		Validation:          ValidateFull,
		Clock:               clock.NewSimulated(tNow),
		HandshakeTimeout:    300 * time.Millisecond,
	}
}

func defaultServer(root, server certs.KeyPair) *ServerConfig {
	return &ServerConfig{
		Chain:      []*certs.Certificate{server.Cert, root.Cert},
		Key:        server,
		MinVersion: ciphers.TLS10,
		MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		},
		HandshakeTimeout: 300 * time.Millisecond,
	}
}

// handshake runs client and server over a pipe and returns both results.
func handshake(t *testing.T, ccfg *ClientConfig, scfg *ServerConfig, host string) (*Session, error, *ServerResult) {
	t.Helper()
	cc, sc := net.Pipe()
	resCh := make(chan *ServerResult, 1)
	go func() { resCh <- Serve(sc, scfg) }()
	sess, err := Client(cc, ccfg, host, 1)
	res := <-resCh
	return sess, err, res
}

func TestHandshakeSuccess(t *testing.T) {
	root, server := testPKI(t, "cloud.vendor.com")
	sess, err, res := handshake(t, defaultClient(root), defaultServer(root, server), "cloud.vendor.com")
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("server: %v", res.Err)
	}
	if sess.Version != ciphers.TLS12 {
		t.Errorf("version = %v", sess.Version)
	}
	if sess.Suite != ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 {
		t.Errorf("suite = %v", sess.Suite)
	}
	if sess.ValidationBypassed {
		t.Error("validation bypassed unexpectedly")
	}
	if sni, _ := res.ClientHello.SNI(); sni != "cloud.vendor.com" {
		t.Errorf("server saw SNI %q", sni)
	}

	// Application data flows both ways through the keystream.
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(res.Session.Conn, buf)
		res.Session.Conn.Write([]byte("token=s3cr3t"))
		res.Session.Close()
	}()
	sess.Conn.Write([]byte("hello"))
	reply := make([]byte, 12)
	if _, err := io.ReadFull(sess.Conn, reply); err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if string(reply) != "token=s3cr3t" {
		t.Fatalf("reply = %q", reply)
	}
	sess.Close()
}

func TestAppDataIsNotPlaintextOnWire(t *testing.T) {
	root, server := testPKI(t, "cloud.vendor.com")
	cc, sc := net.Pipe()
	resCh := make(chan *ServerResult, 1)
	go func() { resCh <- Serve(sc, defaultServer(root, server)) }()
	sess, err := Client(cc, defaultClient(root), "cloud.vendor.com", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := <-resCh

	// Read the raw record off the server's underlying conn and check the
	// payload is not the plaintext.
	done := make(chan []byte, 1)
	go func() {
		rec, err := wire.ReadRecord(res.Session.Conn.Conn)
		if err != nil {
			done <- nil
			return
		}
		done <- rec.Payload
	}()
	plaintext := []byte("super secret telemetry")
	sess.Conn.Write(plaintext)
	raw := <-done
	if raw == nil {
		t.Fatal("no record read")
	}
	if string(raw) == string(plaintext) {
		t.Fatal("application data traveled in plaintext")
	}
	sess.Close()
	res.Session.Close()
}

func TestNegotiatesHighestMutualVersion(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	scfg := defaultServer(root, server)
	scfg.MaxVersion = ciphers.TLS11 // server is behind
	ccfg.CipherSuites = []ciphers.Suite{ciphers.TLS_RSA_WITH_AES_128_CBC_SHA}
	scfg.CipherSuites = ccfg.CipherSuites
	sess, err, _ := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Version != ciphers.TLS11 {
		t.Fatalf("version = %v, want TLS 1.1", sess.Version)
	}
}

func TestVersionNegotiationFailure(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.MinVersion, ccfg.MaxVersion = ciphers.TLS12, ciphers.TLS12
	scfg := defaultServer(root, server)
	scfg.MinVersion, scfg.MaxVersion = ciphers.SSL30, ciphers.TLS11
	_, err, res := handshake(t, ccfg, scfg, "h.com")
	// The server picks TLS 1.1 (it cannot know the client's minimum);
	// the client refuses it with a protocol_version alert.
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailVersion {
		t.Fatalf("client err = %v, want FailVersion", err)
	}
	if res.Err == nil || res.Err.Class != FailAlertReceived {
		t.Fatalf("server err = %v, want FailAlertReceived", res.Err)
	}
	if res.ClientAlert == nil || res.ClientAlert.Description != wire.AlertProtocolVersion {
		t.Fatalf("server observed alert %v, want protocol_version", res.ClientAlert)
	}
}

func TestClientRejectsVersionBelowMinimum(t *testing.T) {
	// Server forces TLS 1.0; a client with MinVersion 1.2 must refuse —
	// this is exactly the Table 6 "old version support" distinction.
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.MinVersion = ciphers.TLS12
	scfg := defaultServer(root, server)
	scfg.ForceVersion = ciphers.TLS10
	_, err, res := handshake(t, ccfg, scfg, "h.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailVersion {
		t.Fatalf("client err = %v, want FailVersion", err)
	}
	if he.Alert == nil || he.Alert.Description != wire.AlertProtocolVersion {
		t.Fatalf("alert = %v, want protocol_version", he.Alert)
	}
	if res.Err == nil {
		t.Fatal("server should have seen failure")
	}
}

func TestClientAcceptsForcedOldVersionWhenSupported(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root) // MinVersion TLS 1.0
	ccfg.CipherSuites = []ciphers.Suite{ciphers.TLS_RSA_WITH_AES_128_CBC_SHA}
	scfg := defaultServer(root, server)
	scfg.CipherSuites = ccfg.CipherSuites
	scfg.ForceVersion = ciphers.TLS10
	sess, err, _ := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Version != ciphers.TLS10 {
		t.Fatalf("version = %v, want TLS 1.0", sess.Version)
	}
}

func TestTLS13Negotiation(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.MaxVersion = ciphers.TLS13
	ccfg.CipherSuites = append([]ciphers.Suite{ciphers.TLS_AES_128_GCM_SHA256}, ccfg.CipherSuites...)
	scfg := defaultServer(root, server)
	scfg.MaxVersion = ciphers.TLS13
	scfg.CipherSuites = append([]ciphers.Suite{ciphers.TLS_AES_128_GCM_SHA256}, scfg.CipherSuites...)
	sess, err, res := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Version != ciphers.TLS13 || sess.Suite != ciphers.TLS_AES_128_GCM_SHA256 {
		t.Fatalf("negotiated %v / %v", sess.Version, sess.Suite)
	}
	if res.ClientHello.MaxVersion() != ciphers.TLS13 {
		t.Error("supported_versions did not advertise 1.3")
	}
	// Legacy version field must stay at 1.2.
	if res.ClientHello.LegacyVersion != ciphers.TLS12 {
		t.Errorf("legacy version = %v", res.ClientHello.LegacyVersion)
	}
}

func TestSuiteNegotiationFailure(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.CipherSuites = []ciphers.Suite{ciphers.TLS_RSA_WITH_RC4_128_SHA}
	scfg := defaultServer(root, server)
	scfg.CipherSuites = []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256}
	_, err, res := handshake(t, ccfg, scfg, "h.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailAlertReceived {
		t.Fatalf("client err = %v", err)
	}
	if res.Err == nil || res.Err.Class != FailParameters {
		t.Fatalf("server err = %v", res.Err)
	}
}

// --- certificate validation behaviours (Tables 2 and 7) ----------------

func selfSignedServer(host string) certs.KeyPair {
	attacker := certs.NewRootCA(certs.Name{CommonName: "mitm-root"}, 666, tNotBefore, tNotAfter, "mitm-root-key")
	return attacker.Issue(certs.Template{
		SerialNumber: 667,
		Subject:      certs.Name{CommonName: host},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{host},
	}, "mitm-leaf")
}

func TestValidatingClientRejectsSelfSigned(t *testing.T) {
	root, _ := testPKI(t, "cloud.vendor.com")
	forged := selfSignedServer("cloud.vendor.com")
	scfg := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
	scfg.Chain = []*certs.Certificate{forged.Cert}
	_, err, res := handshake(t, defaultClient(root), scfg, "cloud.vendor.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("client err = %v, want FailCertificate", err)
	}
	// OpenSSL profile sends unknown_ca for an unknown issuer; the server
	// (i.e. the interceptor) must observe it.
	if res.ClientAlert == nil || res.ClientAlert.Description != wire.AlertUnknownCA {
		t.Fatalf("server observed alert %v, want unknown_ca", res.ClientAlert)
	}
}

func TestNoValidationClientAcceptsSelfSigned(t *testing.T) {
	root, _ := testPKI(t, "cloud.vendor.com")
	forged := selfSignedServer("cloud.vendor.com")
	ccfg := defaultClient(root)
	ccfg.Validation = ValidateNone
	scfg := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
	scfg.Chain = []*certs.Certificate{forged.Cert}
	sess, err, res := handshake(t, ccfg, scfg, "cloud.vendor.com")
	if err != nil {
		t.Fatalf("no-validation client rejected: %v", err)
	}
	if !sess.ValidationBypassed {
		t.Error("ValidationBypassed not set")
	}
	if res.Err != nil {
		t.Fatalf("server err = %v", res.Err)
	}
	sess.Close()
	res.Session.Close()
}

func TestNoHostnameClientAcceptsWrongHostname(t *testing.T) {
	// The WrongHostname attack: a legitimate chain for a domain the
	// attacker controls. Full validators reject (hostname), the Amazon
	// family accepts.
	root, _ := testPKI(t, "cloud.vendor.com")
	attackerCert := root.Issue(certs.Template{
		SerialNumber: 99,
		Subject:      certs.Name{CommonName: "attacker-owned.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{"attacker-owned.com"},
	}, "attacker-legit")
	scfg := &ServerConfig{
		Chain:        []*certs.Certificate{attackerCert.Cert, root.Cert},
		Key:          attackerCert,
		MinVersion:   ciphers.TLS10,
		MaxVersion:   ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}

	full := defaultClient(root)
	_, err, _ := handshake(t, full, scfg, "cloud.vendor.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("full validator err = %v, want FailCertificate", err)
	}

	lax := defaultClient(root)
	lax.Validation = ValidateNoHostname
	sess, err, res := handshake(t, lax, scfg, "cloud.vendor.com")
	if err != nil {
		t.Fatalf("no-hostname client rejected: %v", err)
	}
	sess.Close()
	res.Session.Close()
}

func TestYiCameraGiveUpBehaviour(t *testing.T) {
	// §5.2: the Yi Camera disables validation entirely after 3
	// consecutive failed connections.
	root, _ := testPKI(t, "api.yitechnology.com")
	forged := selfSignedServer("api.yitechnology.com")
	ccfg := defaultClient(root)
	ccfg.Library = ProfileMbedTLS
	ccfg.DisableValidationAfter = 3
	mkServer := func() *ServerConfig {
		s := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
		s.Chain = []*certs.Certificate{forged.Cert}
		return s
	}
	for i := 0; i < 3; i++ {
		if ccfg.ValidationCurrentlyDisabled() {
			t.Fatalf("validation disabled after only %d failures", i)
		}
		_, err, _ := handshake(t, ccfg, mkServer(), "api.yitechnology.com")
		if err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
	}
	if !ccfg.ValidationCurrentlyDisabled() {
		t.Fatal("validation not disabled after 3 failures")
	}
	sess, err, _ := handshake(t, ccfg, mkServer(), "api.yitechnology.com")
	if err != nil {
		t.Fatalf("4th attempt should bypass validation: %v", err)
	}
	if !sess.ValidationBypassed {
		t.Error("ValidationBypassed not set on give-up session")
	}
	sess.Close()
	// A reboot resets the counter.
	ccfg.ResetState()
	if ccfg.ValidationCurrentlyDisabled() {
		t.Fatal("ResetState did not clear the give-up flag")
	}
}

func TestSuccessResetsFailureCounter(t *testing.T) {
	root, server := testPKI(t, "h.com")
	forged := selfSignedServer("h.com")
	ccfg := defaultClient(root)
	ccfg.DisableValidationAfter = 3
	bad := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
	bad.Chain = []*certs.Certificate{forged.Cert}
	good := defaultServer(root, server)
	handshake(t, ccfg, bad, "h.com")
	handshake(t, ccfg, bad, "h.com")
	if sess, err, _ := handshake(t, ccfg, good, "h.com"); err != nil {
		t.Fatalf("good handshake failed: %v", err)
	} else {
		sess.Close()
	}
	handshake(t, ccfg, bad, "h.com")
	if ccfg.ValidationCurrentlyDisabled() {
		t.Fatal("counter did not reset on success")
	}
}

// --- Table 4: library alert profiles ------------------------------------

func TestLibraryAlertMatrix(t *testing.T) {
	// For each library profile, check the alert (or silence) emitted for
	// the two probe cases: unknown CA and known CA with bad signature.
	root, _ := testPKI(t, "probe.example.com")

	unknownCA := func() *ServerConfig {
		forged := selfSignedServer("probe.example.com")
		s := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
		s.Chain = []*certs.Certificate{forged.Cert}
		return s
	}
	spoofedCA := func() *ServerConfig {
		spoof := certs.Spoof(root.Cert, "probe-attacker")
		leaf := spoof.Issue(certs.Template{
			SerialNumber: 55,
			Subject:      certs.Name{CommonName: "probe.example.com"},
			NotBefore:    tNotBefore, NotAfter: tNotAfter,
			DNSNames: []string{"probe.example.com"},
		}, "probe-leaf")
		s := defaultServer(certs.KeyPair{Cert: leaf.Cert}, leaf)
		s.Chain = []*certs.Certificate{leaf.Cert, spoof.Cert}
		return s
	}

	cases := []struct {
		profile      *LibraryProfile
		wantSpoofed  wire.AlertDescription // known CA, invalid signature
		wantUnknown  wire.AlertDescription
		wantNoAlerts bool
	}{
		{ProfileMbedTLS, wire.AlertBadCertificate, wire.AlertUnknownCA, false},
		{ProfileOpenSSL, wire.AlertDecryptError, wire.AlertUnknownCA, false},
		{ProfileJavaJSSE, wire.AlertCertificateUnknown, wire.AlertCertificateUnknown, false},
		{ProfileWolfSSL, wire.AlertBadCertificate, wire.AlertBadCertificate, false},
		{ProfileGnuTLS, 0, 0, true},
		{ProfileSecureTransport, 0, 0, true},
	}
	for _, c := range cases {
		t.Run(c.profile.Name, func(t *testing.T) {
			run := func(scfg *ServerConfig) *wire.Alert {
				ccfg := defaultClient(root)
				ccfg.Library = c.profile
				_, err, res := handshake(t, ccfg, scfg, "probe.example.com")
				if err == nil {
					t.Fatal("handshake unexpectedly succeeded")
				}
				return res.ClientAlert
			}
			gotUnknown := run(unknownCA())
			gotSpoofed := run(spoofedCA())
			if c.wantNoAlerts {
				if gotUnknown != nil || gotSpoofed != nil {
					t.Fatalf("expected silence, got %v / %v", gotUnknown, gotSpoofed)
				}
				return
			}
			if gotUnknown == nil || gotUnknown.Description != c.wantUnknown {
				t.Fatalf("unknown-CA alert = %v, want %s", gotUnknown, c.wantUnknown)
			}
			if gotSpoofed == nil || gotSpoofed.Description != c.wantSpoofed {
				t.Fatalf("spoofed-CA alert = %v, want %s", gotSpoofed, c.wantSpoofed)
			}
		})
	}
}

func TestAmenability(t *testing.T) {
	want := map[string]bool{
		ProfileMbedTLS.Name:         true,
		ProfileOpenSSL.Name:         true,
		ProfileWolfSSL.Name:         false,
		ProfileJavaJSSE.Name:        false,
		ProfileGnuTLS.Name:          false,
		ProfileSecureTransport.Name: false,
	}
	for _, p := range Profiles {
		if got := p.Amenable(); got != want[p.Name] {
			t.Errorf("%s amenable = %v, want %v", p.Name, got, want[p.Name])
		}
	}
}

// --- server failure modes ------------------------------------------------

func TestIncompleteHandshake(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.HandshakeTimeout = 60 * time.Millisecond
	scfg := defaultServer(root, server)
	scfg.Behavior = ServeIncompleteHandshake
	_, err, res := handshake(t, ccfg, scfg, "h.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailIncomplete {
		t.Fatalf("client err = %v, want FailIncomplete", err)
	}
	if res.ClientHello == nil {
		t.Fatal("server should still capture the ClientHello")
	}
}

func TestRejectedHandshake(t *testing.T) {
	root, server := testPKI(t, "h.com")
	scfg := defaultServer(root, server)
	scfg.Behavior = ServeReject
	_, err, res := handshake(t, defaultClient(root), scfg, "h.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailAlertReceived {
		t.Fatalf("client err = %v, want FailAlertReceived", err)
	}
	if he.Alert == nil || he.Alert.Description != wire.AlertHandshakeFailure {
		t.Fatalf("alert = %v", he.Alert)
	}
	if res.ClientHello == nil {
		t.Fatal("ClientHello not captured")
	}
}

// --- OCSP stapling and revocation ---------------------------------------

func TestOCSPStapling(t *testing.T) {
	root, server := testPKI(t, "h.com")
	ccfg := defaultClient(root)
	ccfg.Revocation.RequestStaple = true
	scfg := defaultServer(root, server)
	scfg.OCSPStaple = true
	sess, err, res := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatal(err)
	}
	if !sess.StapledOCSP {
		t.Error("client did not record staple")
	}
	if !res.ClientHello.RequestsOCSPStaple() {
		t.Error("status_request missing from ClientHello")
	}
	sess.Close()
	res.Session.Close()
}

func TestMustStapleHardFail(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	stapleCert := root.Issue(certs.Template{
		SerialNumber: 77,
		Subject:      certs.Name{CommonName: "h.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames:   []string{"h.com"},
		MustStaple: true,
	}, "staple-leaf")
	scfg := &ServerConfig{
		Chain:        []*certs.Certificate{stapleCert.Cert, root.Cert},
		Key:          stapleCert,
		MinVersion:   ciphers.TLS10,
		MaxVersion:   ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
		OCSPStaple:   false, // violates must-staple
	}
	ccfg := defaultClient(root)
	ccfg.Revocation.RequestStaple = true
	_, err, _ := handshake(t, ccfg, scfg, "h.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("err = %v, want FailCertificate for missing staple", err)
	}
	// When the server does staple, the handshake succeeds.
	scfg.OCSPStaple = true
	sess, err, res := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatalf("stapled handshake failed: %v", err)
	}
	sess.Close()
	res.Session.Close()
}

func TestRevocationTrafficGenerated(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	leaf := root.Issue(certs.Template{
		SerialNumber: 88,
		Subject:      certs.Name{CommonName: "h.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames:   []string{"h.com"},
		OCSPServer: "ocsp.sim-ca.com",
		CRLServer:  "crl.sim-ca.com",
	}, "rev-leaf")
	scfg := &ServerConfig{
		Chain:        []*certs.Certificate{leaf.Cert, root.Cert},
		Key:          leaf,
		MinVersion:   ciphers.TLS10,
		MaxVersion:   ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	var dialed []string
	ccfg := defaultClient(root)
	ccfg.SrcHost = "apple-tv"
	ccfg.Revocation = RevocationMode{CheckCRL: true, CheckOCSP: true}
	ccfg.AuxDialer = func(src, dst string, port int) (net.Conn, error) {
		dialed = append(dialed, dst)
		c, s := net.Pipe()
		go func() {
			buf := make([]byte, 256)
			s.Read(buf)
			s.Write([]byte("OK\n"))
			s.Close()
		}()
		return c, nil
	}
	sess, err, res := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	res.Session.Close()
	if len(dialed) != 2 || dialed[0] != "ocsp.sim-ca.com" || dialed[1] != "crl.sim-ca.com" {
		t.Fatalf("revocation dials = %v", dialed)
	}
}

func TestRevocationSoftFail(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	leaf := root.Issue(certs.Template{
		SerialNumber: 89,
		Subject:      certs.Name{CommonName: "h.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames:   []string{"h.com"},
		OCSPServer: "ocsp.down.com",
	}, "rev-leaf-2")
	scfg := &ServerConfig{
		Chain:        []*certs.Certificate{leaf.Cert, root.Cert},
		Key:          leaf,
		MinVersion:   ciphers.TLS10,
		MaxVersion:   ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	ccfg := defaultClient(root)
	ccfg.Revocation = RevocationMode{CheckOCSP: true}
	ccfg.AuxDialer = func(src, dst string, port int) (net.Conn, error) {
		return nil, errors.New("responder down")
	}
	sess, err, res := handshake(t, ccfg, scfg, "h.com")
	if err != nil {
		t.Fatalf("OCSP outage must not fail the handshake: %v", err)
	}
	sess.Close()
	res.Session.Close()
}

// --- fingerprint-affecting configuration ---------------------------------

func TestClientHelloDeterminism(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cfg := defaultClient(root)
	a := cfg.BuildClientHello("h.com", 7).Marshal()
	b := cfg.BuildClientHello("h.com", 7).Marshal()
	if string(a) != string(b) {
		t.Fatal("same inputs produced different ClientHellos")
	}
	c := cfg.BuildClientHello("h.com", 8).Marshal()
	if string(a) == string(c) {
		t.Fatal("different seq produced identical randoms")
	}
}

func TestRevocationModeAny(t *testing.T) {
	if (RevocationMode{}).Any() {
		t.Error("empty mode reported Any")
	}
	if !(RevocationMode{CheckCRL: true}).Any() || !(RevocationMode{RequestStaple: true}).Any() {
		t.Error("non-empty mode not Any")
	}
}

func TestValidationModeString(t *testing.T) {
	if ValidateFull.String() != "full" || ValidateNoHostname.String() != "no-hostname" ||
		ValidateNone.String() != "none" || ValidationMode(9).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}

func TestFailureClassString(t *testing.T) {
	classes := map[FailureClass]string{
		FailIncomplete:    "incomplete",
		FailPeerClosed:    "peer_closed",
		FailAlertReceived: "alert_received",
		FailCertificate:   "certificate",
		FailVersion:       "version",
		FailParameters:    "parameters",
		FailIO:            "io",
		FailureClass(42):  "unknown",
	}
	for c, want := range classes {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestHandshakeErrorFormatting(t *testing.T) {
	a := wire.Alert{Level: wire.LevelFatal, Description: wire.AlertUnknownCA}
	he := failure(FailCertificate, &a, errors.New("boom"))
	msg := he.Error()
	if msg != "tlssim: handshake failed (certificate), alert unknown_ca: boom" {
		t.Fatalf("Error() = %q", msg)
	}
	if he.Unwrap() == nil {
		t.Fatal("Unwrap lost cause")
	}
}
