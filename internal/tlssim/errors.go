package tlssim

import (
	"fmt"

	"repro/internal/wire"
)

// FailureClass buckets handshake failures the way the paper's analyses
// need: an incomplete handshake (no server response) triggers different
// device fallback behaviour than a failed handshake (Table 5), and the
// probe needs to distinguish alerts from silent closes (Table 4).
type FailureClass int

const (
	// FailIncomplete: the peer never completed its flight (timeout).
	FailIncomplete FailureClass = iota
	// FailPeerClosed: the peer closed the connection without an alert.
	FailPeerClosed
	// FailAlertReceived: the peer sent a fatal alert.
	FailAlertReceived
	// FailCertificate: we rejected the peer's certificate (clients only).
	FailCertificate
	// FailVersion: version negotiation failed.
	FailVersion
	// FailParameters: an unacceptable ciphersuite or malformed message.
	FailParameters
	// FailIO: transport-level error.
	FailIO
)

// String implements fmt.Stringer.
func (c FailureClass) String() string {
	switch c {
	case FailIncomplete:
		return "incomplete"
	case FailPeerClosed:
		return "peer_closed"
	case FailAlertReceived:
		return "alert_received"
	case FailCertificate:
		return "certificate"
	case FailVersion:
		return "version"
	case FailParameters:
		return "parameters"
	case FailIO:
		return "io"
	default:
		return "unknown"
	}
}

// HandshakeError describes a failed handshake.
type HandshakeError struct {
	// Class buckets the failure.
	Class FailureClass
	// Alert is the alert involved: the one we sent (FailCertificate,
	// FailVersion, FailParameters) or the one we received
	// (FailAlertReceived). Nil when no alert was exchanged — exactly the
	// "No Alert" rows of Table 4.
	Alert *wire.Alert
	// Err is the underlying cause (e.g. a certs validation error).
	Err error
}

// Error implements error.
func (e *HandshakeError) Error() string {
	msg := fmt.Sprintf("tlssim: handshake failed (%s)", e.Class)
	if e.Alert != nil {
		msg += fmt.Sprintf(", alert %s", e.Alert.Description)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause.
func (e *HandshakeError) Unwrap() error { return e.Err }

func failure(class FailureClass, alert *wire.Alert, err error) *HandshakeError {
	return &HandshakeError{Class: class, Alert: alert, Err: err}
}
