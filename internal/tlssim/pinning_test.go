package tlssim

import (
	"errors"
	"testing"

	"repro/internal/certs"
	"repro/internal/ciphers"
)

// The §6 mitigation analysis: leaf pinning defeats every interception
// attack including a compromised/spoofed root store entry; root pinning
// defeats CA substitution but not a compromised pinned root.

func TestLeafPinningAcceptsRealServer(t *testing.T) {
	root, server := testPKI(t, "pinned.example.com")
	ccfg := defaultClient(root)
	ccfg.PinnedLeaf = server.Cert.Fingerprint()
	sess, err, res := handshake(t, ccfg, defaultServer(root, server), "pinned.example.com")
	if err != nil {
		t.Fatalf("pinned client rejected the real server: %v", err)
	}
	sess.Close()
	res.Session.Close()
}

func TestLeafPinningRejectsSpoofedRootChain(t *testing.T) {
	// The spoofed-CA attack fools nobody who pins the leaf: even though
	// the chain "anchors" at a name-matching root, the leaf is not the
	// pinned one. (With a truly compromised root key the chain would
	// fully verify — pinning is the only remaining defence.)
	root, server := testPKI(t, "pinned.example.com")
	ccfg := defaultClient(root)
	ccfg.PinnedLeaf = server.Cert.Fingerprint()

	spoof := certs.Spoof(root.Cert, "pin-attacker")
	leaf := spoof.Issue(certs.Template{
		SerialNumber: 1,
		Subject:      certs.Name{CommonName: "pinned.example.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{"pinned.example.com"},
	}, "pin-attacker-leaf")
	scfg := &ServerConfig{
		Chain: []*certs.Certificate{leaf.Cert, spoof.Cert}, Key: leaf,
		MinVersion: ciphers.TLS10, MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	_, err, _ := handshake(t, ccfg, scfg, "pinned.example.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("err = %v, want FailCertificate", err)
	}
	var pe PinMismatchError
	if !errors.As(err, &pe) || pe.Kind != "leaf" {
		t.Fatalf("err = %v, want leaf pin mismatch", err)
	}
}

func TestLeafPinningRejectsWrongHostnameAttackEvenWithoutHostnameChecks(t *testing.T) {
	// Table 2's WrongHostname attack against a client that skips
	// hostname checks but pins its leaf: still blocked.
	root, server := testPKI(t, "pinned.example.com")
	attacker := root.Issue(certs.Template{
		SerialNumber: 2,
		Subject:      certs.Name{CommonName: "attacker-owned.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{"attacker-owned.com"},
	}, "pin-wrong-host")
	ccfg := defaultClient(root)
	ccfg.Validation = ValidateNoHostname
	ccfg.PinnedLeaf = server.Cert.Fingerprint()
	scfg := &ServerConfig{
		Chain: []*certs.Certificate{attacker.Cert, root.Cert}, Key: attacker,
		MinVersion: ciphers.TLS10, MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	_, err, _ := handshake(t, ccfg, scfg, "pinned.example.com")
	var pe PinMismatchError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want pin mismatch", err)
	}
}

func TestLeafPinningBindsNoValidationClients(t *testing.T) {
	// The common IoT pattern: no CA validation at all, just a pinned
	// leaf. The pin must still block substituted certificates.
	root, server := testPKI(t, "pinned.example.com")
	ccfg := defaultClient(root)
	ccfg.Validation = ValidateNone
	ccfg.PinnedLeaf = server.Cert.Fingerprint()

	// Real server: accepted.
	sess, err, res := handshake(t, ccfg, defaultServer(root, server), "pinned.example.com")
	if err != nil {
		t.Fatalf("pinned no-validation client rejected real server: %v", err)
	}
	sess.Close()
	res.Session.Close()

	// Forged chain: rejected despite ValidateNone.
	forged := selfSignedServer("pinned.example.com")
	scfg := defaultServer(certs.KeyPair{Cert: forged.Cert}, forged)
	scfg.Chain = []*certs.Certificate{forged.Cert}
	_, err, _ = handshake(t, ccfg, scfg, "pinned.example.com")
	var pe PinMismatchError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want pin mismatch for no-validation client", err)
	}
}

func TestRootPinningAcceptsMatchingAnchor(t *testing.T) {
	root, server := testPKI(t, "pinned.example.com")
	ccfg := defaultClient(root)
	ccfg.PinnedRoot = root.Cert.Fingerprint()
	sess, err, res := handshake(t, ccfg, defaultServer(root, server), "pinned.example.com")
	if err != nil {
		t.Fatalf("root-pinned client rejected real chain: %v", err)
	}
	sess.Close()
	res.Session.Close()
}

func TestRootPinningRejectsOtherTrustedRoot(t *testing.T) {
	// The client trusts two roots but pins one; a legitimate chain from
	// the other root is rejected.
	rootA, _ := testPKI(t, "pinned.example.com")
	rootB := certs.NewRootCA(certs.Name{CommonName: "Other Root"}, 5, tNotBefore, tNotAfter, "other-root")
	serverB := rootB.Issue(certs.Template{
		SerialNumber: 3,
		Subject:      certs.Name{CommonName: "pinned.example.com"},
		NotBefore:    tNotBefore, NotAfter: tNotAfter,
		DNSNames: []string{"pinned.example.com"},
	}, "other-leaf")

	ccfg := defaultClient(rootA)
	ccfg.Roots.Add(rootB.Cert)
	ccfg.PinnedRoot = rootA.Cert.Fingerprint()
	scfg := &ServerConfig{
		Chain: []*certs.Certificate{serverB.Cert, rootB.Cert}, Key: serverB,
		MinVersion: ciphers.TLS10, MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	_, err, _ := handshake(t, ccfg, scfg, "pinned.example.com")
	var pe PinMismatchError
	if !errors.As(err, &pe) || pe.Kind != "root" {
		t.Fatalf("err = %v, want root pin mismatch", err)
	}
}

func TestPinningDoesNotReplaceValidation(t *testing.T) {
	// §6: "certificate validation checks are necessary even if pinning
	// is implemented" — an expired pinned certificate is still rejected.
	root, _ := testPKI(t, "pinned.example.com")
	expired := root.Issue(certs.Template{
		SerialNumber: 4,
		Subject:      certs.Name{CommonName: "pinned.example.com"},
		NotBefore:    tNotBefore,
		NotAfter:     tNotBefore.AddDate(1, 0, 0), // long expired by tNow
		DNSNames:     []string{"pinned.example.com"},
	}, "expired-pinned")
	ccfg := defaultClient(root)
	ccfg.PinnedLeaf = expired.Cert.Fingerprint()
	scfg := &ServerConfig{
		Chain: []*certs.Certificate{expired.Cert, root.Cert}, Key: expired,
		MinVersion: ciphers.TLS10, MaxVersion: ciphers.TLS12,
		CipherSuites: []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
	}
	_, err, _ := handshake(t, ccfg, scfg, "pinned.example.com")
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("err = %v, want certificate failure despite matching pin", err)
	}
	var ee certs.ExpiredError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want expiry error", err)
	}
}
