package tlssim

import (
	"testing"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/wire"
)

// profileModernSilent13 is a hypothetical RFC 8446-era stack: behaves
// like OpenSSL on TLS ≤1.2 but exercises the RFC's permission to omit
// failure alerts at 1.3 — the §6 limitation of the probing technique.
var profileModernSilent13 = &LibraryProfile{
	Name:                "hypothetical-rfc8446-stack",
	SendsAlerts:         true,
	UnknownCAAlert:      wire.AlertUnknownCA,
	BadSignatureAlert:   wire.AlertDecryptError,
	HostnameAlert:       wire.AlertBadCertificate,
	ExpiredAlert:        wire.AlertCertificateExpired,
	TLS13AlertsOptional: true,
}

// tls13Server builds a forged-cert server capped at the given version.
func tls13Server(maxV ciphers.Version) *ServerConfig {
	forged := selfSignedServer("future.example.com")
	return &ServerConfig{
		Chain: []*certs.Certificate{forged.Cert}, Key: forged,
		MinVersion: ciphers.TLS10, MaxVersion: maxV,
		CipherSuites: []ciphers.Suite{
			ciphers.TLS_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
		},
	}
}

func tls13Client(root certs.KeyPair) *ClientConfig {
	cfg := defaultClient(root)
	cfg.Library = profileModernSilent13
	cfg.MaxVersion = ciphers.TLS13
	cfg.CipherSuites = append([]ciphers.Suite{ciphers.TLS_AES_128_GCM_SHA256}, cfg.CipherSuites...)
	return cfg
}

func TestTLS13OptionalAlertsSilenceTheSideChannel(t *testing.T) {
	root, _ := testPKI(t, "future.example.com")

	// Interceptor negotiating TLS 1.3: the stack fails the handshake
	// but, per RFC 8446's optional alerts, sends nothing — the probe
	// observable disappears.
	_, err, res := handshake(t, tls13Client(root), tls13Server(ciphers.TLS13), "future.example.com")
	if err == nil {
		t.Fatal("forged chain accepted")
	}
	if res.ClientAlert != nil {
		t.Fatalf("alert at TLS 1.3 = %v, want silence (RFC 8446 optional alerts)", res.ClientAlert)
	}

	// The same stack against a TLS 1.2-capped interceptor still alerts:
	// the paper's suggested workaround is to keep probing at 1.2 while
	// servers allow it.
	_, err, res = handshake(t, tls13Client(root), tls13Server(ciphers.TLS12), "future.example.com")
	if err == nil {
		t.Fatal("forged chain accepted at 1.2")
	}
	if res.ClientAlert == nil || res.ClientAlert.Description != wire.AlertUnknownCA {
		t.Fatalf("alert at TLS 1.2 = %v, want unknown_ca", res.ClientAlert)
	}
}

func TestTLS13OptionalAlertsOnlyAffect13(t *testing.T) {
	// The version-aware mapping: silence at 1.3, normal table below.
	a, ok := profileModernSilent13.AlertForValidationErrorAt(certs.ErrSignature, ciphers.TLS13)
	if ok {
		t.Fatalf("alert emitted at 1.3: %v", a)
	}
	a, ok = profileModernSilent13.AlertForValidationErrorAt(certs.ErrSignature, ciphers.TLS12)
	if !ok || a.Description != wire.AlertDecryptError {
		t.Fatalf("alert at 1.2 = %v (%v), want decrypt_error", a, ok)
	}
	// The legacy single-argument mapping is unaffected.
	a, ok = profileModernSilent13.AlertForValidationError(certs.ErrSignature)
	if !ok || a.Description != wire.AlertDecryptError {
		t.Fatalf("versionless alert = %v (%v)", a, ok)
	}
}

func TestTable4ProfilesUnaffectedByVersionAwareness(t *testing.T) {
	// None of the six paper profiles set TLS13AlertsOptional: the Table
	// 4 behaviour is version-independent for them.
	for _, p := range Profiles {
		if p.TLS13AlertsOptional {
			t.Errorf("%s unexpectedly marks 1.3 alerts optional", p.Name)
		}
		if !p.SendsAlerts {
			continue
		}
		a12, ok12 := p.AlertForValidationErrorAt(certs.ErrSignature, ciphers.TLS12)
		a13, ok13 := p.AlertForValidationErrorAt(certs.ErrSignature, ciphers.TLS13)
		if ok12 != ok13 || a12 != a13 {
			t.Errorf("%s differs across versions: %v/%v vs %v/%v", p.Name, a12, ok12, a13, ok13)
		}
	}
}
