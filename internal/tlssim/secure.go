package tlssim

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
	"net"
	"sync"

	"repro/internal/ciphers"
	"repro/internal/wire"
)

// masterSecret derives the session master secret from the two hello
// randoms and the negotiated suite. Both honest endpoints — and an
// interceptor that terminated the handshake — can compute it, which is
// exactly the trust model of the paper's interception attacks.
func masterSecret(clientRandom, serverRandom [32]byte, suite ciphers.Suite) []byte {
	h := sha256.New()
	h.Write([]byte("iotls master secret"))
	h.Write(clientRandom[:])
	h.Write(serverRandom[:])
	h.Write([]byte{byte(suite >> 8), byte(suite)})
	return h.Sum(nil)
}

// keystreamCipher is a toy stream cipher: block i of the stream is
// HMAC-SHA256(secret, direction || counter). It stands in for the real
// record protection; the study never depends on cipher strength, only on
// who holds the session secret.
type keystreamCipher struct {
	secret []byte
	label  []byte
	mac    hash.Hash // reused HMAC instance; Reset between blocks
	block  []byte
	used   int
	count  uint64
}

func newKeystream(secret []byte, label string) *keystreamCipher {
	return &keystreamCipher{secret: secret, label: []byte(label)}
}

// nextBlock derives keystream block k.count into k.block, reusing the
// HMAC state and output buffer so steady-state record protection does
// not allocate.
func (k *keystreamCipher) nextBlock() {
	if k.mac == nil {
		k.mac = hmac.New(sha256.New, k.secret)
	} else {
		k.mac.Reset()
	}
	k.mac.Write(k.label)
	var ctr [8]byte
	for j := 0; j < 8; j++ {
		ctr[j] = byte(k.count >> uint(56-8*j))
	}
	k.mac.Write(ctr[:])
	k.block = k.mac.Sum(k.block[:0])
	k.used = 0
	k.count++
}

func (k *keystreamCipher) xor(p []byte) {
	for i := range p {
		if k.used == len(k.block) {
			k.nextBlock()
		}
		p[i] ^= k.block[k.used]
		k.used++
	}
}

// SecureConn carries application data over the record layer, protected
// by the session keystream. It implements net.Conn-style Read/Write for
// the payload stream.
type SecureConn struct {
	net.Conn
	version ciphers.Version

	readMu  sync.Mutex
	readBuf []byte
	in      *keystreamCipher

	writeMu sync.Mutex
	out     *keystreamCipher
}

// newSecureConn wraps conn with record protection. isClient selects the
// keystream directions.
func newSecureConn(conn net.Conn, version ciphers.Version, secret []byte, isClient bool) *SecureConn {
	c2s := newKeystream(secret, "client->server")
	s2c := newKeystream(secret, "server->client")
	sc := &SecureConn{Conn: conn, version: version}
	if isClient {
		sc.out, sc.in = c2s, s2c
	} else {
		sc.out, sc.in = s2c, c2s
	}
	return sc
}

// Write encrypts p into one or more application-data records.
func (c *SecureConn) Write(p []byte) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > 16384 {
			n = 16384
		}
		enc := make([]byte, n)
		copy(enc, p[:n])
		c.out.xor(enc)
		if err := wire.WriteRecord(c.Conn, wire.Record{Type: wire.TypeApplicationData, Version: c.version, Payload: enc}); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Read decrypts the next application-data record, skipping non-data
// records. An incoming close_notify alert is surfaced as io.EOF-like
// behaviour via the underlying error.
func (c *SecureConn) Read(p []byte) (int, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.readBuf) == 0 {
		rec, err := wire.ReadRecord(c.Conn)
		if err != nil {
			return 0, err
		}
		switch rec.Type {
		case wire.TypeApplicationData:
			buf := append([]byte(nil), rec.Payload...)
			c.in.xor(buf)
			c.readBuf = buf
		case wire.TypeAlert:
			if a, err := wire.ParseAlert(rec.Payload); err == nil {
				return 0, a
			}
		default:
			// Ignore stray CCS/handshake records after establishment.
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// Version reports the negotiated protocol version.
func (c *SecureConn) Version() ciphers.Version { return c.version }
