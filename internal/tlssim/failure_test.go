package tlssim

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/wire"
)

// scriptedServer writes raw bytes (ignoring the protocol) after reading
// the ClientHello, modelling broken or malicious servers.
func scriptedServer(t *testing.T, script func(conn net.Conn)) (net.Conn, chan struct{}) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer sc.Close()
		// Consume the ClientHello record.
		sc.SetDeadline(time.Now().Add(time.Second))
		if _, err := wire.ReadRecord(sc); err != nil {
			return
		}
		script(sc)
		// Drain until the client closes so writes do not block it.
		buf := make([]byte, 256)
		for {
			if _, err := sc.Read(buf); err != nil {
				return
			}
		}
	}()
	return cc, done
}

func failClient(root certs.KeyPair) *ClientConfig {
	cfg := defaultClient(root)
	cfg.HandshakeTimeout = 100 * time.Millisecond
	return cfg
}

func TestClientRejectsGarbageRecord(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		conn.Write([]byte{99, 3, 3, 0, 2, 1, 2}) // unknown content type
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters", err)
	}
}

func TestClientRejectsWrongMessageOrder(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		// Certificate before ServerHello.
		msg := (&wire.CertificateMsg{Chain: []*certs.Certificate{server.Cert}}).Message()
		wire.WriteHandshake(conn, ciphers.TLS12, msg)
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters", err)
	}
}

func TestClientRejectsMalformedServerHello(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		wire.WriteHandshake(conn, ciphers.TLS12, wire.Handshake{Type: wire.TypeServerHello, Body: []byte{1, 2}})
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters", err)
	}
	if he.Alert == nil || he.Alert.Description != wire.AlertDecodeError {
		t.Fatalf("alert = %v, want decode_error", he.Alert)
	}
}

func TestClientRejectsMalformedCertificateMsg(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		sh := &wire.ServerHello{Version: ciphers.TLS12, CipherSuite: ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256}
		wire.WriteHandshake(conn, ciphers.TLS12, sh.Message())
		wire.WriteHandshake(conn, ciphers.TLS12, wire.Handshake{Type: wire.TypeCertificate, Body: []byte{0, 0, 5, 1, 2, 3, 4, 5}})
		wire.WriteHandshake(conn, ciphers.TLS12, wire.ServerHelloDone())
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters", err)
	}
}

func TestClientRejectsUnknownCipherSuiteSelection(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		sh := &wire.ServerHello{Version: ciphers.TLS12, CipherSuite: ciphers.Suite(0xfefe)}
		wire.WriteHandshake(conn, ciphers.TLS12, sh.Message())
		msg := (&wire.CertificateMsg{Chain: []*certs.Certificate{server.Cert, root.Cert}}).Message()
		wire.WriteHandshake(conn, ciphers.TLS12, msg)
		wire.WriteHandshake(conn, ciphers.TLS12, wire.ServerHelloDone())
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters (unoffered suite)", err)
	}
	if he.Alert == nil || he.Alert.Description != wire.AlertIllegalParameter {
		t.Fatalf("alert = %v, want illegal_parameter", he.Alert)
	}
}

func TestClientRejectsBogusVersionSelection(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		sh := &wire.ServerHello{Version: ciphers.Version(0x0399), CipherSuite: ciphers.TLS_RSA_WITH_AES_128_CBC_SHA}
		wire.WriteHandshake(conn, ciphers.TLS12, sh.Message())
		msg := (&wire.CertificateMsg{Chain: []*certs.Certificate{server.Cert, root.Cert}}).Message()
		wire.WriteHandshake(conn, ciphers.TLS12, msg)
		wire.WriteHandshake(conn, ciphers.TLS12, wire.ServerHelloDone())
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailVersion {
		t.Fatalf("err = %v, want FailVersion", err)
	}
}

func TestClientRejectsEmptyCertificateChain(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		sh := &wire.ServerHello{Version: ciphers.TLS12, CipherSuite: ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256}
		wire.WriteHandshake(conn, ciphers.TLS12, sh.Message())
		msg := (&wire.CertificateMsg{Chain: nil}).Message()
		wire.WriteHandshake(conn, ciphers.TLS12, msg)
		wire.WriteHandshake(conn, ciphers.TLS12, wire.ServerHelloDone())
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailCertificate {
		t.Fatalf("err = %v, want FailCertificate", err)
	}
}

func TestClientRejectsForgedServerFinished(t *testing.T) {
	// A full flight with a valid chain but garbage Finished data: the
	// transcript binding must catch it.
	root, server := testPKI(t, "h.com")
	cc, done := scriptedServer(t, func(conn net.Conn) {
		sh := &wire.ServerHello{Version: ciphers.TLS12, CipherSuite: ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256}
		sh.Random = [32]byte{1}
		wire.WriteHandshake(conn, ciphers.TLS12, sh.Message())
		msg := (&wire.CertificateMsg{Chain: []*certs.Certificate{server.Cert, root.Cert}}).Message()
		wire.WriteHandshake(conn, ciphers.TLS12, msg)
		wire.WriteHandshake(conn, ciphers.TLS12, wire.ServerHelloDone())
		// Read the client flight (CKE + CCS + Finished records).
		conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		for i := 0; i < 3; i++ {
			if _, err := wire.ReadRecord(conn); err != nil {
				return
			}
		}
		wire.WriteRecord(conn, wire.Record{Type: wire.TypeChangeCipherSpec, Version: ciphers.TLS12, Payload: []byte{1}})
		wire.WriteHandshake(conn, ciphers.TLS12, wire.Handshake{Type: wire.TypeFinished, Body: []byte("not the verify data")})
	})
	_, err := Client(cc, failClient(root), "h.com", 1)
	<-done
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want handshake error", err)
	}
	// The proof signature in ServerHelloDone fails first (the scripted
	// server has no key), surfacing as a certificate failure; a fully
	// forged transcript can also surface at Finished as FailParameters.
	if he.Class != FailCertificate && he.Class != FailParameters {
		t.Fatalf("class = %v, want certificate or parameters failure", he.Class)
	}
}

func TestServerRejectsGarbageFirstRecord(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, sc := net.Pipe()
	resCh := make(chan *ServerResult, 1)
	go func() { resCh <- Serve(sc, defaultServer(root, server)) }()
	cc.Write([]byte{23, 3, 3, 0, 1, 0}) // application data before handshake
	cc.Close()
	res := <-resCh
	if res.Err == nil || res.Err.Class != FailParameters {
		t.Fatalf("server err = %v, want FailParameters", res.Err)
	}
}

func TestServerToleratesClientVanishing(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, sc := net.Pipe()
	resCh := make(chan *ServerResult, 1)
	go func() { resCh <- Serve(sc, defaultServer(root, server)) }()
	cc.Close() // client disappears before sending anything
	res := <-resCh
	if res.Err == nil || res.Err.Class != FailPeerClosed {
		t.Fatalf("server err = %v, want FailPeerClosed", res.Err)
	}
}

func TestServerTimesOutOnSilentClient(t *testing.T) {
	root, server := testPKI(t, "h.com")
	cc, sc := net.Pipe()
	cfg := defaultServer(root, server)
	cfg.HandshakeTimeout = 60 * time.Millisecond
	resCh := make(chan *ServerResult, 1)
	go func() { resCh <- Serve(sc, cfg) }()
	defer cc.Close()
	res := <-resCh
	if res.Err == nil || res.Err.Class != FailIncomplete {
		t.Fatalf("server err = %v, want FailIncomplete", res.Err)
	}
}

func TestClientRequiresLibraryProfile(t *testing.T) {
	root, _ := testPKI(t, "h.com")
	cfg := defaultClient(root)
	cfg.Library = nil
	cc, _ := net.Pipe()
	_, err := Client(cc, cfg, "h.com", 1)
	var he *HandshakeError
	if !errors.As(err, &he) || he.Class != FailParameters {
		t.Fatalf("err = %v, want FailParameters", err)
	}
}
