// Package audit implements the §6 "auditing service" recommendation of
// the paper: a TLS endpoint that IoT devices contact at regular
// intervals (e.g. once per reboot); the service grades the security of
// the connection the device offers — protocol versions, ciphersuites,
// signature algorithms, revocation posture — and produces advisories a
// manufacturer (or user) can act on as new attacks are published.
//
// The server never needs to complete the handshake maliciously; it
// simply terminates TLS with a legitimate certificate and inspects the
// ClientHello, the same observable the study's fingerprinting uses.
package audit

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/certs"
	"repro/internal/ciphers"
	"repro/internal/netem"
	"repro/internal/tlssim"
	"repro/internal/wire"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warn findings should be fixed at the next update.
	Warn
	// Critical findings demand immediate remediation (the NSA/OWASP
	// "immediate" class the paper cites for DES/3DES/RC4/EXPORT).
	Critical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Critical:
		return "CRITICAL"
	case Warn:
		return "WARN"
	default:
		return "INFO"
	}
}

// Finding is one graded observation about a device's TLS offer.
type Finding struct {
	Severity Severity
	Code     string
	Detail   string
}

// Advisory is the audit result for one device connection.
type Advisory struct {
	Device   string
	Findings []Finding
	// Grade summarises: "A" (no findings above Info) to "F" (critical).
	Grade string
}

// worstSeverity returns the maximum severity present.
func (a *Advisory) worstSeverity() Severity {
	worst := Info
	for _, f := range a.Findings {
		if f.Severity > worst {
			worst = f.Severity
		}
	}
	return worst
}

// HasCode reports whether a finding with the code exists.
func (a *Advisory) HasCode(code string) bool {
	for _, f := range a.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// Render draws the advisory.
func (a *Advisory) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit %s: grade %s\n", a.Device, a.Grade)
	for _, f := range a.Findings {
		fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Severity, f.Code, f.Detail)
	}
	return b.String()
}

// Grade converts a ClientHello into an advisory, applying the paper's
// §2 security criteria.
func Grade(device string, ch *wire.ClientHello) *Advisory {
	adv := &Advisory{Device: device}
	add := func(sev Severity, code, detail string) {
		adv.Findings = append(adv.Findings, Finding{Severity: sev, Code: code, Detail: detail})
	}

	// Protocol versions.
	maxV := ch.MaxVersion()
	minV := maxV
	for _, v := range ch.SupportedVersions() {
		if v < minV {
			minV = v
		}
	}
	if maxV < ciphers.TLS12 {
		add(Critical, "max-version-deprecated",
			fmt.Sprintf("maximum offered version %s is deprecated", maxV))
	} else if maxV == ciphers.TLS12 {
		add(Info, "no-tls13", "TLS 1.3 not offered")
	}
	if minV < ciphers.TLS12 {
		add(Warn, "old-versions-enabled",
			fmt.Sprintf("accepts connections down to %s; active attackers can force old versions", minV))
	}

	// Ciphersuites.
	var insecure, nullAnon []string
	hasStrong := false
	for _, s := range ch.CipherSuites {
		switch {
		case s.NullOrAnon():
			nullAnon = append(nullAnon, s.String())
		case s.Insecure():
			insecure = append(insecure, s.String())
		case s.Strong():
			hasStrong = true
		}
	}
	if len(nullAnon) > 0 {
		add(Critical, "null-anon-suites", strings.Join(nullAnon, ", "))
	}
	if len(insecure) > 0 {
		add(Critical, "insecure-suites",
			fmt.Sprintf("%d insecure suites offered: %s", len(insecure), strings.Join(first3(insecure), ", ")))
	}
	if !hasStrong {
		add(Warn, "no-forward-secrecy", "no (EC)DHE suite offered")
	}

	// Signature algorithms.
	for _, alg := range ch.SignatureAlgorithms() {
		if alg.Weak() {
			add(Warn, "weak-signature-algorithms", alg.String())
			break
		}
	}

	// Revocation posture.
	if !ch.RequestsOCSPStaple() {
		add(Info, "no-ocsp-staple-request", "client does not request stapled OCSP responses")
	}

	switch adv.worstSeverity() {
	case Critical:
		adv.Grade = "F"
	case Warn:
		adv.Grade = "C"
	default:
		adv.Grade = "A"
	}
	return adv
}

func first3(xs []string) []string {
	if len(xs) > 3 {
		return xs[:3]
	}
	return xs
}

// Service is the network-facing audit endpoint.
type Service struct {
	Host string

	mu         sync.Mutex
	advisories map[string]*Advisory // device -> latest advisory
}

// NewService registers the audit endpoint on the network at host:443,
// terminating TLS with a certificate issued by the given CA (which the
// devices must trust).
func NewService(nw *netem.Network, host string, ca certs.KeyPair) *Service {
	svc := &Service{Host: host, advisories: make(map[string]*Advisory)}
	leaf := ca.Issue(certs.Template{
		SerialNumber: 424242,
		Subject:      certs.Name{CommonName: host, Organization: "IoTLS Audit", Country: "US"},
		NotBefore:    ca.Cert.NotBefore,
		NotAfter:     ca.Cert.NotAfter,
		DNSNames:     []string{host},
	}, "audit-leaf-"+host)
	cfg := &tlssim.ServerConfig{
		Chain:            []*certs.Certificate{leaf.Cert, ca.Cert},
		Key:              leaf,
		HandshakeTimeout: 5 * time.Second,
		MinVersion:       ciphers.SSL30, // accept anything: the point is to observe
		MaxVersion: ciphers.TLS13,
		CipherSuites: []ciphers.Suite{
			ciphers.TLS_AES_128_GCM_SHA256,
			ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256,
			ciphers.TLS_RSA_WITH_AES_128_CBC_SHA,
			ciphers.TLS_RSA_WITH_3DES_EDE_CBC_SHA,
			ciphers.TLS_RSA_WITH_RC4_128_SHA,
		},
		OCSPStaple: true,
		Telemetry:  nw.Telemetry(),
	}
	nw.Listen(host, 443, func(conn net.Conn, meta netem.ConnMeta) {
		res := tlssim.Serve(conn, cfg)
		if res.ClientHello == nil {
			return
		}
		nw.Telemetry().Counter("audit.grades").Inc()
		adv := Grade(meta.SrcHost, res.ClientHello)
		svc.mu.Lock()
		svc.advisories[meta.SrcHost] = adv
		svc.mu.Unlock()
		if res.Session != nil {
			// Read the device's request (the transport is unbuffered;
			// the client writes first), then answer with its grade.
			res.Session.Conn.Conn.SetDeadline(time.Now().Add(nw.IODeadline()))
			buf := make([]byte, 1024)
			res.Session.Conn.Read(buf)
			fmt.Fprintf(res.Session.Conn, "AUDIT %s\n", adv.Grade)
			res.Session.Close()
		}
	})
	return svc
}

// AdvisoryFor returns the latest advisory for a device.
func (s *Service) AdvisoryFor(device string) (*Advisory, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	adv, ok := s.advisories[device]
	return adv, ok
}

// Summary renders all advisories, worst grades first.
func (s *Service) Summary() string {
	s.mu.Lock()
	advs := make([]*Advisory, 0, len(s.advisories))
	for _, a := range s.advisories {
		advs = append(advs, a)
	}
	s.mu.Unlock()
	sort.Slice(advs, func(i, j int) bool {
		if advs[i].Grade != advs[j].Grade {
			return advs[i].Grade > advs[j].Grade
		}
		return advs[i].Device < advs[j].Device
	})
	var b strings.Builder
	b.WriteString("== audit service summary ==\n")
	for _, a := range advs {
		b.WriteString(a.Render())
	}
	return b.String()
}
