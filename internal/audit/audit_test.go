package audit

import (
	"strings"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/device"
	"repro/internal/driver"
	"repro/internal/netem"
	"repro/internal/wire"
)

func hello(maxV ciphers.Version, suites []ciphers.Suite, exts ...wire.Extension) *wire.ClientHello {
	ch := &wire.ClientHello{
		LegacyVersion: ciphers.MinVersion(maxV, ciphers.TLS12),
		CipherSuites:  suites,
		Extensions:    exts,
	}
	if maxV >= ciphers.TLS13 {
		ch.Extensions = append(ch.Extensions,
			wire.SupportedVersionsExtension([]ciphers.Version{ciphers.TLS13, ciphers.TLS12}))
	}
	return ch
}

func TestGradeCleanModernClient(t *testing.T) {
	ch := hello(ciphers.TLS13,
		[]ciphers.Suite{ciphers.TLS_AES_128_GCM_SHA256, ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
		wire.StatusRequestExtension(),
		wire.SignatureAlgorithmsExtension([]ciphers.SignatureAlgorithm{ciphers.ED25519}),
	)
	adv := Grade("clean", ch)
	if adv.Grade != "A" {
		t.Fatalf("grade = %s, want A: %s", adv.Grade, adv.Render())
	}
}

func TestGradeInsecureSuites(t *testing.T) {
	ch := hello(ciphers.TLS12, []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_RC4_128_SHA,
	})
	adv := Grade("weak", ch)
	if adv.Grade != "F" || !adv.HasCode("insecure-suites") {
		t.Fatalf("advisory = %s", adv.Render())
	}
}

func TestGradeOldMaxVersion(t *testing.T) {
	ch := hello(ciphers.TLS10, []ciphers.Suite{ciphers.TLS_RSA_WITH_AES_128_CBC_SHA})
	adv := Grade("old", ch)
	if adv.Grade != "F" || !adv.HasCode("max-version-deprecated") {
		t.Fatalf("advisory = %s", adv.Render())
	}
	// Old minimum but modern maximum is a warning, not critical.
	ch2 := hello(ciphers.TLS12, []ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256})
	adv2 := Grade("downto10", ch2)
	if !adv2.HasCode("old-versions-enabled") {
		t.Fatalf("implicit old versions not flagged: %s", adv2.Render())
	}
}

func TestGradeNullAnon(t *testing.T) {
	ch := hello(ciphers.TLS12, []ciphers.Suite{
		ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
		ciphers.TLS_RSA_WITH_NULL_SHA,
	})
	adv := Grade("null", ch)
	if !adv.HasCode("null-anon-suites") || adv.Grade != "F" {
		t.Fatalf("advisory = %s", adv.Render())
	}
}

func TestGradeNoPFS(t *testing.T) {
	ch := hello(ciphers.TLS12, []ciphers.Suite{ciphers.TLS_RSA_WITH_AES_128_GCM_SHA256})
	adv := Grade("nopfs", ch)
	if !adv.HasCode("no-forward-secrecy") || adv.Grade != "C" {
		t.Fatalf("advisory = %s", adv.Render())
	}
}

func TestGradeWeakSigalgs(t *testing.T) {
	ch := hello(ciphers.TLS12,
		[]ciphers.Suite{ciphers.TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256},
		wire.SignatureAlgorithmsExtension([]ciphers.SignatureAlgorithm{ciphers.RSA_PKCS1_SHA1}),
	)
	adv := Grade("sha1", ch)
	if !adv.HasCode("weak-signature-algorithms") {
		t.Fatalf("advisory = %s", adv.Render())
	}
}

func TestServiceEndToEnd(t *testing.T) {
	// Register the audit endpoint, point real device models at it, and
	// check the advisories the service derives from live handshakes.
	clk := clock.NewSimulated(device.ActiveSnapshot.Start())
	nw := netem.New(clk)
	reg := device.NewRegistry(clk)
	svc := NewService(nw, "audit.iotls.example", device.OperationalCAs(reg.Universe)[0].Pair)

	connect := func(id string) {
		t.Helper()
		dev, _ := reg.Get(id)
		dst := device.Destination{Host: svc.Host, Slot: 0, Boot: true, MonthlyConns: 1}
		out := driver.Connect(nw, dev, dst, device.ActiveSnapshot, 1)
		if !out.Established {
			t.Fatalf("%s could not reach audit service: %v", id, out.Err)
		}
		if !strings.HasPrefix(out.Reply, "AUDIT ") {
			t.Fatalf("%s reply = %q", id, out.Reply)
		}
	}

	connect("zmodo-doorbell")  // weak everything
	connect("nest-thermostat") // clean

	zmodo, ok := svc.AdvisoryFor("zmodo-doorbell")
	if !ok || zmodo.Grade != "F" {
		t.Fatalf("zmodo advisory = %+v", zmodo)
	}
	if !zmodo.HasCode("insecure-suites") || !zmodo.HasCode("old-versions-enabled") {
		t.Fatalf("zmodo advisory incomplete: %s", zmodo.Render())
	}
	nest, ok := svc.AdvisoryFor("nest-thermostat")
	if !ok || nest.Grade == "F" {
		t.Fatalf("nest advisory = %+v", nest)
	}

	sum := svc.Summary()
	if !strings.Contains(sum, "zmodo-doorbell") || !strings.Contains(sum, "nest-thermostat") {
		t.Fatalf("summary incomplete: %s", sum)
	}
	// Worst grades first.
	if strings.Index(sum, "zmodo") > strings.Index(sum, "nest") {
		t.Fatal("summary not sorted worst-first")
	}
}

func TestAdvisoryForUnknownDevice(t *testing.T) {
	clk := clock.NewSimulated(device.ActiveSnapshot.Start())
	nw := netem.New(clk)
	reg := device.NewRegistry(clk)
	svc := NewService(nw, "audit.iotls.example", device.OperationalCAs(reg.Universe)[0].Pair)
	if _, ok := svc.AdvisoryFor("ghost"); ok {
		t.Fatal("advisory for unknown device")
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "INFO" || Warn.String() != "WARN" || Critical.String() != "CRITICAL" {
		t.Fatal("severity names wrong")
	}
}
