// Package report persists a completed study's artifacts to disk: one
// file per table and figure (the layout of the paper's published data
// release), machine-readable CSVs for the heatmap figures, and an index.
package report

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/ciphers"
	"repro/internal/core"
)

// artifact is one output file, rendered lazily so a missing section of
// a degraded report (nil figure after a drained or fault-ridden run)
// yields a placeholder file instead of sinking the whole Write.
type artifact struct {
	Name   string
	Title  string
	Render func() string
}

// renderSafe invokes one artifact renderer contained: a panic (nil
// figure, damaged analysis) becomes an explicit placeholder, matching
// the PARTIAL annotations core.Report.Render uses for the same inputs.
func renderSafe(render func() string) (out string) {
	defer func() {
		if p := recover(); p != nil {
			out = fmt.Sprintf("[PARTIAL: artifact unavailable — %v]\n", p)
		}
	}()
	return render()
}

// Write renders every artifact of rep into dir (created if needed) and
// returns the file names written, index.md first.
func Write(dir string, s *core.Study, rep *core.Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	nameOf := s.NameOf
	artifacts := []artifact{
		{"table1.txt", "Device inventory", func() string { return analysis.RenderTable1(s.Registry) }},
		{"table2.txt", "Interception attacks", analysis.RenderTable2},
		{"table3.txt", "Root-store sources", analysis.RenderTable3},
		{"table4.txt", "Library alert amenability", func() string { return analysis.RenderTable4(rep.Table4Rows) }},
		{"table5.txt", "Downgrade behaviours", func() string { return analysis.RenderTable5(rep.Downgrades, nameOf) }},
		{"table6.txt", "Old-version support", func() string { return analysis.RenderTable6(rep.OldVersions, nameOf) }},
		{"table7.txt", "Interception vulnerability", func() string { return analysis.RenderTable7(rep.Interceptions, nameOf) }},
		{"table8.txt", "Revocation support", func() string { return rep.Table8.Render() }},
		{"table9.txt", "Root-store exploration", func() string { return analysis.RenderTable9(rep.ProbeReports, nameOf) }},
		{"figure1.txt", "Version heatmaps", func() string { return rep.Figure1.Render() }},
		{"figure2.txt", "Insecure-suite advertising", func() string { return rep.Figure2.Render() }},
		{"figure3.txt", "Strong-suite establishment", func() string { return rep.Figure3.Render() }},
		{"figure4.txt", "Root staleness", func() string { return rep.Figure4.Render() }},
		{"figure5.txt", "Fingerprint sharing", func() string { return rep.Figure5.Render() }},
		{"stats.txt", "Statistics", func() string {
			return strings.Join([]string{
				renderSafe(rep.Comparison.Render),
				renderSafe(rep.Passthrough.Render),
				renderSafe(rep.Dataset.Render),
				renderSafe(rep.Diversity.Render),
			}, "\n")
		}},
		{"figure2.csv", "Insecure-suite advertising (CSV)", func() string { return heatmapCSV(rep.Figure2.Heatmap) }},
		{"figure3.csv", "Strong-suite establishment (CSV)", func() string { return heatmapCSV(rep.Figure3.Heatmap) }},
	}
	// The passive dataset itself. The store also accumulates the active
	// suites' later handshakes, so the export is clipped to the passive
	// window — matching what the dataset subsystem persists and keeping
	// live-run and restored-run artifacts byte-identical.
	from, to := s.Window()
	passive := capture.NewStore()
	for _, o := range s.Store.All() {
		if !o.Month.Before(from) && !to.Before(o.Month) {
			passive.Add(o)
		}
	}
	var ds strings.Builder
	if _, err := capture.WriteCSV(&ds, passive); err != nil {
		return nil, err
	}
	csv := ds.String()
	artifacts = append(artifacts, artifact{"observations.csv", "Passive observations (CSV)", func() string { return csv }})

	var written []string
	var index strings.Builder
	index.WriteString("# IoTLS study artifacts\n\n")
	for _, a := range artifacts {
		path := filepath.Join(dir, a.Name)
		if err := os.WriteFile(path, []byte(renderSafe(a.Render)), 0o644); err != nil {
			return written, err
		}
		written = append(written, a.Name)
		fmt.Fprintf(&index, "- [%s](%s) — %s\n", a.Name, a.Name, a.Title)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.md"), []byte(index.String()), 0o644); err != nil {
		return written, err
	}
	return append([]string{"index.md"}, written...), nil
}

// heatmapCSV flattens a heatmap into device,month,fraction rows; gaps
// (no traffic) are omitted.
func heatmapCSV(h *analysis.Heatmap) string {
	var b strings.Builder
	b.WriteString("device,month,fraction\n")
	labels := append([]string(nil), h.RowOrder...)
	sort.Strings(labels)
	for _, label := range labels {
		for _, m := range h.Months {
			f := h.Get(label, m)
			if f < 0 {
				continue
			}
			fmt.Fprintf(&b, "%q,%s,%.4f\n", label, m, f)
		}
	}
	return b.String()
}

// versionBands is kept for future per-band CSV exports of Figure 1.
var versionBands = []ciphers.VersionBand{ciphers.Band13, ciphers.Band12, ciphers.BandOld}

// Figure1CSV flattens Figure 1 (all bands, advertised and established).
func Figure1CSV(fig *analysis.Figure1) string {
	var b strings.Builder
	b.WriteString("device,month,band,direction,fraction\n")
	emit := func(hm *analysis.Heatmap, band ciphers.VersionBand, dir string) {
		labels := append([]string(nil), hm.RowOrder...)
		sort.Strings(labels)
		for _, label := range labels {
			for _, m := range hm.Months {
				f := hm.Get(label, m)
				if f < 0 {
					continue
				}
				fmt.Fprintf(&b, "%q,%s,%s,%s,%.4f\n", label, m, band, dir, f)
			}
		}
	}
	for _, band := range versionBands {
		emit(fig.Advertised[band], band, "advertised")
		emit(fig.Established[band], band, "established")
	}
	return b.String()
}
