package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/ciphers"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/device"
)

func TestHeatmapCSV(t *testing.T) {
	months := clock.MonthRange(clock.Month{Year: 2018, Mon: 1}, clock.Month{Year: 2018, Mon: 3})
	h := analysis.NewHeatmap("t", months)
	h.Set("dev a", clock.Month{Year: 2018, Mon: 1}, 0.5)
	h.Set("dev a", clock.Month{Year: 2018, Mon: 3}, 1)
	out := heatmapCSV(h)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows (the gap month omitted)
		t.Fatalf("csv lines = %v", lines)
	}
	if lines[1] != `"dev a",2018-01,0.5000` {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestFigure1CSV(t *testing.T) {
	store := capture.NewStore()
	store.Add(&capture.Observation{
		Device: "d", Host: "h", Port: 443,
		Time:           device.StudyStart.Start().Add(time.Hour),
		Weight:         10,
		SawClientHello: true, SawServerHello: true, Established: true,
		AdvertisedMax:     ciphers.TLS12,
		NegotiatedVersion: ciphers.TLS12,
	})
	fig := analysis.BuildFigure1(store, func(s string) string { return s })
	out := Figure1CSV(fig)
	if !strings.Contains(out, `"d",2018-01,1.2,advertised,1.0000`) {
		t.Fatalf("csv missing advertised row:\n%s", out)
	}
	if !strings.Contains(out, `"d",2018-01,1.2,established,1.0000`) {
		t.Fatalf("csv missing established row:\n%s", out)
	}
}

func TestWriteFullStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study skipped in -short mode")
	}
	s := core.NewStudy()
	rep, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files, err := Write(dir, s, rep)
	if err != nil {
		t.Fatal(err)
	}
	if files[0] != "index.md" {
		t.Fatalf("first file = %s", files[0])
	}
	want := []string{"table1.txt", "table5.txt", "table9.txt", "figure1.txt",
		"figure4.txt", "figure2.csv", "stats.txt", "observations.csv", "index.md"}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	// Spot-check contents.
	t9, _ := os.ReadFile(filepath.Join(dir, "table9.txt"))
	if !strings.Contains(string(t9), "Google Home Mini") {
		t.Error("table9 missing probed device")
	}
	obs, _ := os.ReadFile(filepath.Join(dir, "observations.csv"))
	if lines := strings.Count(string(obs), "\n"); lines < 3000 {
		t.Errorf("observations.csv rows = %d, want thousands", lines)
	}
	idx, _ := os.ReadFile(filepath.Join(dir, "index.md"))
	if !strings.Contains(string(idx), "table7.txt") {
		t.Error("index missing table7 entry")
	}
}
