// Package clock provides virtual time for the IoTLS simulation.
//
// Every component in the testbed (devices, cloud servers, certificates,
// the capture store) reads time through a Clock so that two years of
// longitudinal traffic can be simulated in milliseconds, and so that
// tests are fully deterministic.
package clock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the simulation.
type Clock interface {
	// Now returns the current virtual (or real) time.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Simulated is a manually-advanced virtual clock. The zero value is not
// usable; construct with NewSimulated. Simulated is safe for concurrent
// use.
type Simulated struct {
	mu     sync.RWMutex
	now    time.Time
	timers []*simTimer
}

type simTimer struct {
	at time.Time
	fn func(time.Time)
}

// NewSimulated returns a Simulated clock starting at the given instant.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now implements Clock.
func (s *Simulated) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d, firing any callbacks scheduled
// within the window in chronological order. Advancing by a negative
// duration panics: virtual time never rewinds.
func (s *Simulated) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: cannot advance simulated clock backwards")
	}
	s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves the clock forward to t, firing any callbacks scheduled
// at or before t in chronological order. Moving backwards panics.
func (s *Simulated) AdvanceTo(t time.Time) {
	s.mu.Lock()
	if t.Before(s.now) {
		s.mu.Unlock()
		panic(fmt.Sprintf("clock: AdvanceTo(%v) before current time %v", t, s.now))
	}
	for {
		// Pop the earliest timer that is due.
		idx := -1
		for i, tm := range s.timers {
			if !tm.at.After(t) && (idx == -1 || tm.at.Before(s.timers[idx].at)) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		tm := s.timers[idx]
		s.timers = append(s.timers[:idx], s.timers[idx+1:]...)
		if tm.at.After(s.now) {
			s.now = tm.at
		}
		// Fire without the lock so callbacks may schedule more timers.
		s.mu.Unlock()
		tm.fn(tm.at)
		s.mu.Lock()
	}
	s.now = t
	s.mu.Unlock()
}

// Schedule registers fn to run when the clock reaches at. If at is not
// after the current time, fn runs immediately (synchronously).
func (s *Simulated) Schedule(at time.Time, fn func(time.Time)) {
	s.mu.Lock()
	if !at.After(s.now) {
		now := s.now
		s.mu.Unlock()
		fn(now)
		return
	}
	s.timers = append(s.timers, &simTimer{at: at, fn: fn})
	s.mu.Unlock()
}

// PendingTimers reports how many scheduled callbacks have not yet fired.
func (s *Simulated) PendingTimers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.timers)
}

// Month identifies a calendar month, the unit of aggregation used by all
// longitudinal analyses in the paper (Figures 1-3).
type Month struct {
	Year int
	Mon  time.Month
}

// MonthOf returns the Month containing t (in UTC).
func MonthOf(t time.Time) Month {
	u := t.UTC()
	return Month{Year: u.Year(), Mon: u.Month()}
}

// Start returns the first instant of the month in UTC.
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.Mon, 1, 0, 0, 0, 0, time.UTC)
}

// Next returns the following calendar month.
func (m Month) Next() Month {
	return MonthOf(m.Start().AddDate(0, 1, 0))
}

// Before reports whether m precedes o.
func (m Month) Before(o Month) bool {
	if m.Year != o.Year {
		return m.Year < o.Year
	}
	return m.Mon < o.Mon
}

// Index returns the number of months between m and base (m - base).
// A negative result means m precedes base.
func (m Month) Index(base Month) int {
	return (m.Year-base.Year)*12 + int(m.Mon) - int(base.Mon)
}

// String renders the month as "2018-01".
func (m Month) String() string {
	return fmt.Sprintf("%04d-%02d", m.Year, int(m.Mon))
}

// MonthRange returns every month from first through last, inclusive.
// It returns nil if last precedes first.
func MonthRange(first, last Month) []Month {
	if last.Before(first) {
		return nil
	}
	var out []Month
	for m := first; !last.Before(m); m = m.Next() {
		out = append(out, m)
	}
	return out
}

// SortMonths sorts months chronologically in place.
func SortMonths(ms []Month) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Before(ms[j]) })
}
