package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	c.Advance(90 * time.Minute)
	want := epoch.Add(90 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimulatedAdvanceBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Advance")
		}
	}()
	NewSimulated(epoch).Advance(-time.Second)
}

func TestSimulatedAdvanceToBackwardsPanics(t *testing.T) {
	c := NewSimulated(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AdvanceTo before now")
		}
	}()
	c.AdvanceTo(epoch.Add(-time.Hour))
}

func TestScheduleFiresInOrder(t *testing.T) {
	c := NewSimulated(epoch)
	var order []int
	c.Schedule(epoch.Add(3*time.Hour), func(time.Time) { order = append(order, 3) })
	c.Schedule(epoch.Add(1*time.Hour), func(time.Time) { order = append(order, 1) })
	c.Schedule(epoch.Add(2*time.Hour), func(time.Time) { order = append(order, 2) })
	c.Advance(4 * time.Hour)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("callbacks fired out of order: %v", order)
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", c.PendingTimers())
	}
}

func TestSchedulePastFiresImmediately(t *testing.T) {
	c := NewSimulated(epoch)
	fired := false
	c.Schedule(epoch, func(time.Time) { fired = true })
	if !fired {
		t.Fatal("callback at current time did not fire immediately")
	}
}

func TestScheduleDuringCallback(t *testing.T) {
	c := NewSimulated(epoch)
	var fired []string
	c.Schedule(epoch.Add(time.Hour), func(at time.Time) {
		fired = append(fired, "first")
		c.Schedule(at.Add(time.Hour), func(time.Time) { fired = append(fired, "second") })
	})
	c.Advance(3 * time.Hour)
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("nested scheduling failed: %v", fired)
	}
}

func TestScheduleNotYetDueStaysPending(t *testing.T) {
	c := NewSimulated(epoch)
	c.Schedule(epoch.Add(time.Hour), func(time.Time) { t.Fatal("should not fire") })
	c.Advance(30 * time.Minute)
	if c.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d, want 1", c.PendingTimers())
	}
}

func TestConcurrentAdvanceAndNow(t *testing.T) {
	c := NewSimulated(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Now()
			}
		}()
	}
	for j := 0; j < 100; j++ {
		c.Advance(time.Minute)
	}
	wg.Wait()
	want := epoch.Add(100 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := Real{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestMonthOf(t *testing.T) {
	m := MonthOf(time.Date(2019, time.May, 17, 23, 4, 0, 0, time.UTC))
	if m.Year != 2019 || m.Mon != time.May {
		t.Fatalf("MonthOf = %+v", m)
	}
}

func TestMonthString(t *testing.T) {
	m := Month{Year: 2018, Mon: time.July}
	if m.String() != "2018-07" {
		t.Fatalf("String() = %q, want 2018-07", m.String())
	}
}

func TestMonthNextAcrossYear(t *testing.T) {
	m := Month{Year: 2018, Mon: time.December}.Next()
	if m.Year != 2019 || m.Mon != time.January {
		t.Fatalf("Next() = %+v", m)
	}
}

func TestMonthRangePaperStudyPeriod(t *testing.T) {
	// The paper's passive dataset spans January 2018 - March 2020: 27 months.
	ms := MonthRange(Month{2018, time.January}, Month{2020, time.March})
	if len(ms) != 27 {
		t.Fatalf("study period months = %d, want 27", len(ms))
	}
	if ms[0].String() != "2018-01" || ms[26].String() != "2020-03" {
		t.Fatalf("range endpoints wrong: %v .. %v", ms[0], ms[len(ms)-1])
	}
}

func TestMonthRangeEmpty(t *testing.T) {
	if ms := MonthRange(Month{2020, time.March}, Month{2018, time.January}); ms != nil {
		t.Fatalf("inverted range = %v, want nil", ms)
	}
}

func TestMonthIndex(t *testing.T) {
	base := Month{2018, time.January}
	cases := []struct {
		m    Month
		want int
	}{
		{Month{2018, time.January}, 0},
		{Month{2018, time.December}, 11},
		{Month{2019, time.January}, 12},
		{Month{2020, time.March}, 26},
		{Month{2017, time.December}, -1},
	}
	for _, c := range cases {
		if got := c.m.Index(base); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestSortMonths(t *testing.T) {
	ms := []Month{{2019, time.March}, {2018, time.January}, {2018, time.December}}
	SortMonths(ms)
	if ms[0].String() != "2018-01" || ms[1].String() != "2018-12" || ms[2].String() != "2019-03" {
		t.Fatalf("SortMonths = %v", ms)
	}
}

// Property: MonthOf(m.Start()) == m for any valid month.
func TestMonthRoundTripProperty(t *testing.T) {
	f := func(yearOff uint8, monIdx uint8) bool {
		m := Month{Year: 2000 + int(yearOff%50), Mon: time.Month(monIdx%12) + 1}
		return MonthOf(m.Start()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Index is the inverse of repeated Next.
func TestMonthIndexNextProperty(t *testing.T) {
	f := func(steps uint8) bool {
		base := Month{2018, time.January}
		m := base
		for i := 0; i < int(steps%60); i++ {
			m = m.Next()
		}
		return m.Index(base) == int(steps%60)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
